"""Deterministic wire codec for every ``repro.pastry.messages`` type.

Layout — all integers big-endian, no padding, no host-dependent types::

    frame    := u32 body-length | body                (encode_frame)
    body     := version:u8 | type-id:u8 | flags:u8
                | [sender-descriptor]                 (flags bit 0)
                | [tuning-hint:f64]                   (flags bit 1)
                | per-type fields in declared order
    desc     := id:u128 | addr:u64
    opt-desc := present:u8 | [desc]
    list     := count:u16 | desc*
    rows     := count:u16 | (row:u16 | list)*
    payload  := kind:u8 | [u32 length | bytes]        (None/bytes/str/int)

Encoding is a pure function of the message value: the same message always
produces the same bytes (dict rows are emitted in sorted row order), so
``encode(decode(encode(msg))) == encode(msg)`` holds for every message —
the property test in ``tests/test_runtime_wire.py`` enforces it across
the whole registry, which must list every concrete message type
(``test_registry_is_complete`` fails when a new type is added without a
codec entry).

Type ids are a stable wire contract, like detlint rule codes: never
renumber them, only append.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.pastry import messages as m
from repro.pastry.nodeid import NodeDescriptor, intern_descriptor

#: bump only for incompatible layout changes; decoders reject mismatches
WIRE_VERSION = 1

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_MAX_U16 = 0xFFFF
_MAX_U32 = 0xFFFFFFFF
_MAX_U64 = 0xFFFFFFFFFFFFFFFF
_MAX_U128 = (1 << 128) - 1

#: flags byte bits (shared Message header fields)
_FLAG_SENDER = 0x01
_FLAG_HINT = 0x02

#: payload kind tags
_PAYLOAD_NONE = 0
_PAYLOAD_BYTES = 1
_PAYLOAD_STR = 2
_PAYLOAD_INT = 3


class WireError(ValueError):
    """Raised for unencodable values and malformed/truncated buffers."""


# ----------------------------------------------------------------------
# Primitive writers
# ----------------------------------------------------------------------
def _w_uint(out: bytearray, value: int, packer: struct.Struct,
            limit: int, what: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise WireError(f"{what}: expected int, got {type(value).__name__}")
    if not 0 <= value <= limit:
        raise WireError(f"{what} out of range [0, {limit}]: {value}")
    out += packer.pack(value)


def _w_u128(out: bytearray, value: int, what: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise WireError(f"{what}: expected int, got {type(value).__name__}")
    if not 0 <= value <= _MAX_U128:
        raise WireError(f"{what} out of range [0, 2^128): {value}")
    out += value.to_bytes(16, "big")


def _w_f64(out: bytearray, value: float, what: str) -> None:
    try:
        out += _F64.pack(value)
    except (struct.error, TypeError) as exc:
        raise WireError(f"{what}: not a float: {value!r}") from exc


def _w_desc(out: bytearray, desc: Optional[NodeDescriptor], what: str) -> None:
    if desc is None:
        out += b"\x00"
        return
    out += b"\x01"
    _w_u128(out, desc.id, f"{what}.id")
    _w_uint(out, desc.addr, _U64, _MAX_U64, f"{what}.addr")


def _w_desc_list(out: bytearray, descs: List[NodeDescriptor], what: str) -> None:
    if len(descs) > _MAX_U16:
        raise WireError(f"{what}: list too long for the wire: {len(descs)}")
    out += _U16.pack(len(descs))
    for i, desc in enumerate(descs):
        if desc is None:
            raise WireError(f"{what}[{i}]: None descriptor inside a list")
        _w_desc(out, desc, f"{what}[{i}]")


def _w_rows(out: bytearray, rows: Dict[int, List[NodeDescriptor]],
            what: str) -> None:
    if len(rows) > _MAX_U16:
        raise WireError(f"{what}: too many rows: {len(rows)}")
    out += _U16.pack(len(rows))
    # Sorted row order: dict insertion order is a run artefact, not part of
    # the message value, and encoding must be a pure function of the value.
    for row in sorted(rows):
        _w_uint(out, row, _U16, _MAX_U16, f"{what} row index")
        _w_desc_list(out, rows[row], f"{what}[{row}]")


def _w_payload(out: bytearray, payload: Any, what: str) -> None:
    if payload is None:
        out += _U8.pack(_PAYLOAD_NONE)
    elif isinstance(payload, (bytes, bytearray)):
        data = bytes(payload)
        out += _U8.pack(_PAYLOAD_BYTES) + _U32.pack(len(data)) + data
    elif isinstance(payload, str):
        data = payload.encode("utf-8")
        out += _U8.pack(_PAYLOAD_STR) + _U32.pack(len(data)) + data
    elif isinstance(payload, int) and not isinstance(payload, bool):
        try:
            out += _U8.pack(_PAYLOAD_INT) + _I64.pack(payload)
        except struct.error as exc:
            raise WireError(f"{what}: int payload exceeds 64 bits") from exc
    else:
        raise WireError(
            f"{what}: unencodable payload type {type(payload).__name__} "
            f"(wire payloads are None/bytes/str/int)")


# ----------------------------------------------------------------------
# Primitive readers: (buffer, offset) -> (value, new offset)
# ----------------------------------------------------------------------
def _need(buf: bytes, off: int, n: int) -> None:
    if off + n > len(buf):
        raise WireError(f"truncated message: need {n} bytes at offset {off}, "
                        f"have {len(buf) - off}")


def _r_uint(buf: bytes, off: int, packer: struct.Struct) -> Tuple[int, int]:
    _need(buf, off, packer.size)
    return packer.unpack_from(buf, off)[0], off + packer.size


def _r_u128(buf: bytes, off: int) -> Tuple[int, int]:
    _need(buf, off, 16)
    return int.from_bytes(buf[off:off + 16], "big"), off + 16


def _r_f64(buf: bytes, off: int) -> Tuple[float, int]:
    _need(buf, off, 8)
    return _F64.unpack_from(buf, off)[0], off + 8


def _r_desc(buf: bytes, off: int) -> Tuple[Optional[NodeDescriptor], int]:
    present, off = _r_uint(buf, off, _U8)
    if present == 0:
        return None, off
    if present != 1:
        raise WireError(f"bad descriptor presence flag: {present}")
    node_id, off = _r_u128(buf, off)
    addr, off = _r_uint(buf, off, _U64)
    return intern_descriptor(node_id, addr), off


def _r_desc_list(buf: bytes, off: int) -> Tuple[List[NodeDescriptor], int]:
    count, off = _r_uint(buf, off, _U16)
    out: List[NodeDescriptor] = []
    for _ in range(count):
        desc, off = _r_desc(buf, off)
        if desc is None:
            raise WireError("None descriptor inside a list")
        out.append(desc)
    return out, off


def _r_rows(buf: bytes, off: int) -> Tuple[Dict[int, List[NodeDescriptor]], int]:
    count, off = _r_uint(buf, off, _U16)
    rows: Dict[int, List[NodeDescriptor]] = {}
    for _ in range(count):
        row, off = _r_uint(buf, off, _U16)
        entries, off = _r_desc_list(buf, off)
        rows[row] = entries
    return rows, off


def _r_bool(buf: bytes, off: int) -> Tuple[bool, int]:
    _need(buf, off, 1)
    return buf[off] != 0, off + 1


def _r_payload(buf: bytes, off: int) -> Tuple[Any, int]:
    kind, off = _r_uint(buf, off, _U8)
    if kind == _PAYLOAD_NONE:
        return None, off
    if kind == _PAYLOAD_INT:
        _need(buf, off, 8)
        return _I64.unpack_from(buf, off)[0], off + 8
    if kind in (_PAYLOAD_BYTES, _PAYLOAD_STR):
        length, off = _r_uint(buf, off, _U32)
        _need(buf, off, length)
        raw = bytes(buf[off:off + length])
        off += length
        if kind == _PAYLOAD_STR:
            try:
                return raw.decode("utf-8"), off
            except UnicodeDecodeError as exc:
                raise WireError(f"bad utf-8 in str payload: {exc}") from exc
        return raw, off
    raise WireError(f"unknown payload kind: {kind}")


# ----------------------------------------------------------------------
# Field codecs by kind name
# ----------------------------------------------------------------------
_WRITERS = {
    "u16": lambda out, v, what: _w_uint(out, v, _U16, _MAX_U16, what),
    "u32": lambda out, v, what: _w_uint(out, v, _U32, _MAX_U32, what),
    "u128": _w_u128,
    "f64": _w_f64,
    "bool": lambda out, v, what: out.extend(b"\x01" if v else b"\x00"),
    "desc": _w_desc,
    "desc_list": _w_desc_list,
    "rows": _w_rows,
    "payload": _w_payload,
}

_READERS = {
    "u16": lambda buf, off: _r_uint(buf, off, _U16),
    "u32": lambda buf, off: _r_uint(buf, off, _U32),
    "u128": _r_u128,
    "f64": _r_f64,
    "bool": _r_bool,
    "desc": _r_desc,
    "desc_list": _r_desc_list,
    "rows": _r_rows,
    "payload": _r_payload,
}

#: (type id, message class, per-type fields beyond the shared header).
#: Append-only: ids are the wire contract.
_REGISTRY: Tuple[Tuple[int, type, Tuple[Tuple[str, str], ...]], ...] = (
    (1, m.JoinRequest, (("msg_id", "u128"), ("joiner", "desc"),
                        ("rows", "rows"))),
    (2, m.JoinReply, (("rows", "rows"), ("leaf_set", "desc_list"))),
    (3, m.LsProbe, (("leaf_set", "desc_list"), ("failed", "desc_list"))),
    (4, m.LsProbeReply, (("leaf_set", "desc_list"), ("failed", "desc_list"))),
    (5, m.Heartbeat, ()),
    (6, m.RtProbe, (("seq", "u32"),)),
    (7, m.RtProbeReply, (("seq", "u32"),)),
    (8, m.DistanceProbe, (("seq", "u32"),)),
    (9, m.DistanceProbeReply, (("seq", "u32"),)),
    (10, m.DistanceReport, (("rtt", "f64"),)),
    (11, m.RowAnnounce, (("row", "u16"), ("entries", "desc_list"))),
    (12, m.RowRequest, (("row", "u16"),)),
    (13, m.RowReply, (("row", "u16"), ("entries", "desc_list"))),
    (14, m.SlotRequest, (("row", "u16"), ("col", "u16"))),
    (15, m.SlotReply, (("row", "u16"), ("col", "u16"), ("entry", "desc"))),
    (16, m.LeafSetRequest, (("key", "u128"),)),
    (17, m.LeafSetReply, (("key", "u128"), ("nodes", "desc_list"))),
    (18, m.Lookup, (("msg_id", "u128"), ("key", "u128"), ("source", "desc"),
                    ("sent_at", "f64"), ("hops", "u32"),
                    ("payload", "payload"), ("wants_acks", "bool"),
                    ("deferrals", "u32"))),
    (19, m.Ack, (("msg_id", "u128"),)),
    (20, m.StateRequest, ()),
    (21, m.StateReply, (("nodes", "desc_list"),)),
    (22, m.AppDirect, (("payload", "payload"),)),
)

_TYPE_TO_ID: Dict[type, int] = {cls: tid for tid, cls, _ in _REGISTRY}
_ID_TO_ENTRY: Dict[int, Tuple[type, Tuple[Tuple[str, str], ...]]] = {
    tid: (cls, fields) for tid, cls, fields in _REGISTRY
}
_TYPE_TO_FIELDS: Dict[type, Tuple[Tuple[str, str], ...]] = {
    cls: fields for _, cls, fields in _REGISTRY
}


def wire_types() -> List[type]:
    """Every message class with a wire codec (registry order)."""
    return [cls for _, cls, _ in _REGISTRY]


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def encode(msg: m.Message) -> bytes:
    """Serialize one message to its canonical wire bytes."""
    type_id = _TYPE_TO_ID.get(msg.__class__)
    if type_id is None:
        raise WireError(f"no wire codec for {type(msg).__name__}")
    flags = 0
    if msg.sender is not None:
        flags |= _FLAG_SENDER
    if msg.tuning_hint is not None:
        flags |= _FLAG_HINT
    out = bytearray((WIRE_VERSION, type_id, flags))
    if msg.sender is not None:
        _w_u128(out, msg.sender.id, "sender.id")
        _w_uint(out, msg.sender.addr, _U64, _MAX_U64, "sender.addr")
    if msg.tuning_hint is not None:
        _w_f64(out, msg.tuning_hint, "tuning_hint")
    what = type(msg).__name__
    for attr, kind in _TYPE_TO_FIELDS[msg.__class__]:
        _WRITERS[kind](out, getattr(msg, attr), f"{what}.{attr}")
    return bytes(out)


def decode(data: bytes) -> m.Message:
    """Parse canonical wire bytes back into a message.

    Strict: the buffer must contain exactly one message — trailing bytes
    are an error, as is any truncation or unknown type/version.
    """
    buf = bytes(data)
    _need(buf, 0, 3)
    version, type_id, flags = buf[0], buf[1], buf[2]
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version: {version}")
    entry = _ID_TO_ENTRY.get(type_id)
    if entry is None:
        raise WireError(f"unknown message type id: {type_id}")
    if flags & ~(_FLAG_SENDER | _FLAG_HINT):
        raise WireError(f"unknown flag bits set: {flags:#x}")
    cls, fields = entry
    off = 3
    sender: Optional[NodeDescriptor] = None
    if flags & _FLAG_SENDER:
        sender_id, off = _r_u128(buf, off)
        sender_addr, off = _r_uint(buf, off, _U64)
        sender = intern_descriptor(sender_id, sender_addr)
    hint: Optional[float] = None
    if flags & _FLAG_HINT:
        hint, off = _r_f64(buf, off)
    msg = cls()
    msg.sender = sender
    msg.tuning_hint = hint
    for attr, kind in fields:
        value, off = _READERS[kind](buf, off)
        setattr(msg, attr, value)
    if off != len(buf):
        raise WireError(
            f"{len(buf) - off} trailing byte(s) after {cls.__name__}")
    return msg


def encode_frame(msg: m.Message) -> bytes:
    """``encode`` with a u32 length prefix (stream transports, artifacts)."""
    body = encode(msg)
    return _U32.pack(len(body)) + body


def decode_frame(data: bytes, off: int = 0) -> Tuple[m.Message, int]:
    """Parse one length-prefixed frame at ``off``; returns (msg, new off)."""
    buf = bytes(data)
    length, off = _r_uint(buf, off, _U32)
    _need(buf, off, length)
    return decode(buf[off:off + length]), off + length
