"""Real-socket runtime: MSPastry over asyncio UDP (DESIGN.md §13).

The same :class:`repro.pastry.node.MSPastryNode` state machines that the
discrete-event simulator drives run here over real sockets and the wall
clock, behind the ``Clock``/``Transport`` seam of :mod:`repro.interfaces`:

* :mod:`repro.runtime.wire` — deterministic length-prefixed codec for
  every ``repro.pastry.messages`` type,
* :mod:`repro.runtime.clock` — :class:`AsyncioClock`, a wall-clock timer
  wheel implementing the ``Clock`` protocol,
* :mod:`repro.runtime.transport` — :class:`UdpTransport`, one UDP socket
  per node implementing the ``Transport`` protocol,
* :mod:`repro.runtime.metrics` — per-process JSON metrics endpoint,
* :mod:`repro.runtime.service` — :class:`NodeService`: one node's life
  cycle (bootstrap, seed discovery, graceful shutdown),
* :mod:`repro.runtime.live` — spawn/drive/tear down an N-node localhost
  network and emit a schema-versioned ``repro-live/1`` artifact.

This package deliberately uses asyncio, sockets and the wall clock — the
things detlint forbids in simulation code.  It is exempted *by package*
from DET002/DET005/DET006 (see ``repro.analysis.rules_determinism``);
the protocol packages it drives stay fully policed.
"""

from repro.runtime.clock import AsyncioClock, RealTimerHandle  # noqa: F401
from repro.runtime.live import (  # noqa: F401
    LIVE_SCHEMA,
    LiveError,
    LiveSpec,
    format_live_report,
    run_live,
    verify_live_schema,
    write_live_artifact,
)
from repro.runtime.service import NodeService  # noqa: F401
from repro.runtime.transport import UdpTransport, pack_addr, unpack_addr  # noqa: F401
from repro.runtime.wire import WireError, decode, decode_frame, encode, encode_frame  # noqa: F401
