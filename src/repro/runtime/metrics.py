"""Per-process JSON metrics endpoint for a live node.

A deliberately tiny HTTP/1.0 server (asyncio streams, no framework): any
``GET`` returns the node's current snapshot as JSON.  This is the live
network view — ``curl localhost:<port>`` while a node is serving shows
peers, leaf set, routing-table fill and lookup latency/consistency
counters.  One server per :class:`repro.runtime.service.NodeService`,
bound to localhost by default.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional


class MetricsServer:
    """Serve ``snapshot()`` as JSON over HTTP on every GET."""

    def __init__(self, snapshot: Callable[[], Dict[str, Any]]) -> None:
        self._snapshot = snapshot
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self.requests_served = 0

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and listen; returns the actual port (port 0 = OS pick)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            # Consume the request head (request line + headers); the
            # response is the same snapshot regardless of path.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = json.dumps(self._snapshot(), sort_keys=True).encode()
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n" + body)
            await writer.drain()
            self.requests_served += 1
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client reset races
                pass
