"""Run a whole MSPastry overlay live on localhost UDP sockets.

:func:`run_live` boots ``n_nodes`` :class:`NodeService` instances in one
process (one socket each, one shared :class:`AsyncioClock`), waits until
every join completes, drives a lookup workload, and reports hops,
latency and routing consistency in a schema-versioned artifact
(``repro-live/1``).

The *plan* — node identifiers, lookup origins and keys — is derived
deterministically from ``LiveSpec.seed``, so a live run and a simulated
run of the same spec route the same workload over the same identifier
space (the basis of the ``live_compare`` experiment).  What stays
nondeterministic is exactly what the paper's testbed numbers include:
kernel scheduling, socket latency, timer jitter.

Routing consistency follows DSN 2004 §5: a lookup is *consistent* when
it is delivered by the node whose identifier is the key's true root
among all currently-live nodes (computed here against the full member
list, which the harness knows and individual nodes do not).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
from typing import Any, Dict, List, Optional

from repro.pastry import messages as m
from repro.pastry.config import PastryConfig
from repro.pastry.node import MSPastryNode
from repro.pastry.nodeid import is_closer_root, random_nodeid
from repro.runtime.service import NodeService

#: Schema tag for live-run artifacts.  Bump on breaking layout changes.
LIVE_SCHEMA = "repro-live/1"


class LiveError(RuntimeError):
    """A live run failed to reach its goal (joins or workload)."""


@dataclasses.dataclass
class LiveSpec:
    """Everything that defines a live run; seed makes the plan replayable."""

    n_nodes: int = 5
    n_lookups: int = 50
    seed: int = 42
    host: str = "127.0.0.1"
    #: delay between successive joins; live joins need real round-trips
    join_stagger: float = 0.05
    #: delay between successive lookups
    lookup_interval: float = 0.01
    #: quiet period after joins before the workload starts
    settle: float = 0.5
    join_timeout: float = 30.0
    lookup_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise LiveError("a live network needs at least one node")
        if self.n_lookups < 0:
            raise LiveError("n_lookups must be non-negative")


def live_config() -> PastryConfig:
    """Protocol profile for short-lived localhost deployments.

    Localhost proximity is flat, so PNS and nearest-neighbour joins buy
    nothing but wall-clock (their probe phases run on real timers);
    heartbeats and probe timeouts are shortened to fit a CI-scale run.
    The routing machinery itself — leaf sets, prefix routing, per-hop
    acks — is the stock MSPastry configuration.
    """
    return PastryConfig(
        leaf_set_size=8,
        heartbeat_period=2.0,
        probe_timeout=0.5,
        pns=False,
        nearest_neighbour_join=False,
        self_tuning=False,
        per_hop_acks=True,
    )


def make_plan(spec: LiveSpec) -> Dict[str, Any]:
    """Deterministic workload plan: node ids, lookup origins and keys."""
    rng = random.Random(spec.seed)
    node_ids = []
    seen = set()
    while len(node_ids) < spec.n_nodes:
        nid = random_nodeid(rng)
        if nid not in seen:  # collisions are ~impossible; stay exact anyway
            seen.add(nid)
            node_ids.append(nid)
    lookups = [
        {"origin": rng.randrange(spec.n_nodes), "key": random_nodeid(rng)}
        for _ in range(spec.n_lookups)
    ]
    return {"node_ids": node_ids, "lookups": lookups}


def root_of(key: int, node_ids: List[int]) -> int:
    """The true root of ``key`` among ``node_ids`` (harness oracle)."""
    best = node_ids[0]
    for nid in node_ids[1:]:
        if is_closer_root(nid, best, key):
            best = nid
    return best


async def _await_predicate(predicate, timeout: float, interval: float,
                           what: str) -> None:
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() >= deadline:
            raise LiveError(f"timed out after {timeout:.0f}s waiting for {what}")
        await asyncio.sleep(interval)


async def run_live_async(spec: LiveSpec,
                         config: Optional[PastryConfig] = None,
                         ) -> Dict[str, Any]:
    """Boot the overlay, run the workload, return the artifact dict."""
    loop = asyncio.get_event_loop()
    plan = make_plan(spec)
    node_ids: List[int] = plan["node_ids"]
    cfg = config if config is not None else live_config()

    from repro.runtime.clock import AsyncioClock
    clock = AsyncioClock(loop)
    services: List[NodeService] = []
    # msg_id -> {"sent": t, "deliveries": [(node_id, hops, latency), ...]}
    pending: Dict[int, Dict[str, Any]] = {}

    def on_deliver(node: MSPastryNode, msg: m.Lookup) -> None:
        entry = pending.get(msg.msg_id)
        if entry is not None:
            entry["deliveries"].append(
                (node.id, msg.hops, clock.now - msg.sent_at))

    try:
        # Seed node first; everyone else bootstraps off its endpoint.
        seed = await NodeService.start(
            node_id=node_ids[0], rng_seed=spec.seed, config=cfg,
            host=spec.host, clock=clock, on_deliver=on_deliver, loop=loop)
        services.append(seed)
        join_started = clock.now
        for i in range(1, spec.n_nodes):
            await asyncio.sleep(spec.join_stagger)
            services.append(await NodeService.start(
                node_id=node_ids[i], rng_seed=spec.seed + i, config=cfg,
                host=spec.host, seed_addr=seed.node.addr, clock=clock,
                on_deliver=on_deliver, loop=loop))
        await _await_predicate(
            lambda: all(s.is_active for s in services),
            spec.join_timeout, 0.02,
            f"{spec.n_nodes} joins "
            f"({sum(s.is_active for s in services)} active)")
        join_wall = clock.now - join_started
        if any(s.bootstrap_failed for s in services):
            raise LiveError("seed bootstrap failed on at least one node")
        await asyncio.sleep(spec.settle)

        # Workload: lookups from planned origins to planned keys.
        for item in plan["lookups"]:
            # register-before-route: a lookup whose origin is the key's
            # root delivers synchronously inside route_lookup.
            def register(msg: m.Lookup, key: int = item["key"]) -> None:
                pending[msg.msg_id] = {"key": key, "deliveries": []}
            services[item["origin"]].issue_lookup(
                item["key"], register=register)
            await asyncio.sleep(spec.lookup_interval)
        await _await_predicate(
            lambda: all(p["deliveries"] for p in pending.values()),
            spec.lookup_timeout, 0.02,
            f"{spec.n_lookups} lookup deliveries "
            f"({sum(bool(p['deliveries']) for p in pending.values())} done)")
    finally:
        for svc in reversed(services):
            await svc.stop()
        clock.close()

    # Score against the oracle.
    delivered = 0
    consistent = 0
    hops: List[int] = []
    latencies: List[float] = []
    for entry in pending.values():
        if not entry["deliveries"]:
            continue
        delivered += 1
        node_id, n_hops, latency = entry["deliveries"][0]
        hops.append(n_hops)
        latencies.append(latency)
        if node_id == root_of(entry["key"], node_ids):
            consistent += 1
    hops.sort()
    latencies.sort()
    n = len(latencies)
    transports = [svc.transport.counters() for svc in services]
    return {
        "schema": LIVE_SCHEMA,
        "spec": dataclasses.asdict(spec),
        "plan_digest": {
            "node_ids": [f"{nid:032x}" for nid in node_ids],
            "n_lookups": len(plan["lookups"]),
        },
        "joins": {
            "completed": spec.n_nodes,
            "wall_seconds": round(join_wall, 3),
        },
        "lookups": {
            "issued": spec.n_lookups,
            "delivered": delivered,
            "consistent": consistent,
            "routing_consistency": (
                consistent / delivered if delivered else None),
            "hops_mean": (sum(hops) / len(hops)) if hops else None,
            "hops_p50": hops[len(hops) // 2] if hops else None,
            "latency_ms_p50": (
                round(latencies[n // 2] * 1000.0, 3) if n else None),
            "latency_ms_p95": (
                round(latencies[min(n - 1, int(n * 0.95))] * 1000.0, 3)
                if n else None),
        },
        "transport": {
            "messages_sent": sum(t["messages_sent"] for t in transports),
            "messages_malformed": sum(
                t["messages_malformed"] for t in transports),
            "bytes_sent": sum(t["bytes_sent"] for t in transports),
        },
        "clock": {
            "timers_fired": clock.timers_fired,
            "callback_errors": clock.callback_errors,
        },
    }


def run_live(spec: LiveSpec,
             config: Optional[PastryConfig] = None) -> Dict[str, Any]:
    """Synchronous wrapper: run a live overlay to completion."""
    return asyncio.run(run_live_async(spec, config))


def verify_live_schema(artifact: Dict[str, Any]) -> None:
    """Raise :class:`LiveError` unless ``artifact`` is a valid repro-live/1."""
    if not isinstance(artifact, dict):
        raise LiveError("artifact must be a mapping")
    if artifact.get("schema") != LIVE_SCHEMA:
        raise LiveError(
            f"schema mismatch: {artifact.get('schema')!r} != {LIVE_SCHEMA!r}")
    for section in ("spec", "joins", "lookups", "transport"):
        if section not in artifact:
            raise LiveError(f"artifact missing section {section!r}")
    lk = artifact["lookups"]
    for field in ("issued", "delivered", "consistent", "routing_consistency"):
        if field not in lk:
            raise LiveError(f"lookups section missing {field!r}")


def write_live_artifact(artifact: Dict[str, Any], path: str) -> None:
    verify_live_schema(artifact)
    with open(path, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_live_report(artifact: Dict[str, Any]) -> str:
    """Human-readable summary of a live-run artifact."""
    spec = artifact["spec"]
    joins = artifact["joins"]
    lk = artifact["lookups"]
    consistency = lk["routing_consistency"]
    lines = [
        f"live overlay: {spec['n_nodes']} nodes on {spec['host']} "
        f"(seed {spec['seed']})",
        f"  joins      : {joins['completed']} completed "
        f"in {joins['wall_seconds']:.2f}s",
        f"  lookups    : {lk['delivered']}/{lk['issued']} delivered",
        f"  consistency: "
        + (f"{consistency:.4f}" if consistency is not None else "n/a"),
        f"  hops       : mean "
        + (f"{lk['hops_mean']:.2f}" if lk['hops_mean'] is not None else "n/a")
        + f", p50 {lk['hops_p50']}",
        f"  latency    : p50 {lk['latency_ms_p50']} ms, "
        f"p95 {lk['latency_ms_p95']} ms",
    ]
    return "\n".join(lines)
