"""UDP implementation of the :class:`repro.interfaces.Transport` seam.

One :class:`UdpTransport` is one socket is one node — the deployment
shape, where every overlay node owns a port.  Addresses stay plain ints
(the protocol code compares and stores them, nothing more) by packing
IPv4 endpoint and port into one integer::

    addr = (ipv4_as_u32 << 16) | port        # fits in 48 bits

so a :class:`repro.pastry.nodeid.NodeDescriptor` carries a routable
address in the same field the simulator uses for topology attachment
indexes.  ``Lookup.msg_id = (addr << 24) | seq`` then spans up to 72
bits, which is why the wire codec transmits message ids as 128-bit
integers rather than u64.

Delivery: each datagram is one length-prefixed frame
(:func:`repro.runtime.wire.encode_frame`).  The source address handed to
the handler is recovered from the UDP peer endpoint, so per-hop ack
matching (``HopAckManager.on_ack`` compares ``from_addr`` against
``next_hop.addr``) works exactly as in the simulator.  Malformed
datagrams are counted and dropped — on a real network they are line
noise, not a protocol event.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.interfaces import Address, Handler
from repro.runtime.wire import WireError, decode_frame, encode_frame

log = logging.getLogger(__name__)

_PORT_BITS = 16
_PORT_MASK = (1 << _PORT_BITS) - 1


def pack_addr(host: str, port: int) -> Address:
    """Pack a dotted-quad IPv4 host and port into one opaque int."""
    if not 0 < port <= _PORT_MASK:
        raise ValueError(f"port out of range: {port}")
    ip = struct.unpack(">I", socket.inet_aton(host))[0]
    return (ip << _PORT_BITS) | port


def unpack_addr(addr: Address) -> Tuple[str, int]:
    """Inverse of :func:`pack_addr`."""
    host = socket.inet_ntoa(struct.pack(">I", addr >> _PORT_BITS))
    return host, addr & _PORT_MASK


class _DatagramProtocol(asyncio.DatagramProtocol):
    """asyncio glue: forwards datagrams to the owning transport."""

    def __init__(self, owner: "UdpTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes,
                          peer: Tuple[str, int]) -> None:
        self._owner._on_datagram(data, peer)

    def error_received(self, exc: Exception) -> None:
        self._owner.socket_errors += 1


class UdpTransport:
    """One node's UDP endpoint; implements the ``Transport`` protocol.

    Create with :meth:`open` (binds the socket).  ``attach()`` returns
    the packed local address; a second ``attach()`` raises — one socket,
    one node.
    """

    def __init__(self) -> None:
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._local_addr: Optional[Address] = None
        self._attached = False
        self._handlers: Dict[Address, Handler] = {}
        self._owners: Dict[Address, Any] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped_dead = 0
        self.messages_malformed = 0
        self.socket_errors = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    @classmethod
    async def open(cls, host: str = "127.0.0.1", port: int = 0,
                   loop: Optional[asyncio.AbstractEventLoop] = None,
                   ) -> "UdpTransport":
        """Bind a UDP socket on ``host:port`` (port 0 = OS-assigned)."""
        self = cls()
        loop = loop if loop is not None else asyncio.get_event_loop()
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(self), local_addr=(host, port))
        self._transport = transport
        bound_host, bound_port = transport.get_extra_info("sockname")[:2]
        self._local_addr = pack_addr(bound_host, bound_port)
        return self

    # ------------------------------------------------------------------
    # Transport protocol surface
    # ------------------------------------------------------------------
    def attach(self) -> Address:
        if self._local_addr is None:
            raise RuntimeError("transport is not open")
        if self._attached:
            raise RuntimeError(
                "UdpTransport carries exactly one node per socket; "
                "open a second transport for a second node")
        self._attached = True
        return self._local_addr

    def register(self, address: Address, handler: Handler,
                 owner: Any = None) -> None:
        if address != self._local_addr:
            raise ValueError(
                f"cannot register foreign address {address} on a socket "
                f"bound to {self._local_addr}")
        self._handlers[address] = handler
        if owner is not None:
            self._owners[address] = owner

    def deregister(self, address: Address) -> None:
        self._handlers.pop(address, None)
        self._owners.pop(address, None)

    def is_registered(self, address: Address) -> bool:
        return address in self._handlers

    def owner_of(self, address: Address) -> Optional[Any]:
        return self._owners.get(address)

    def addresses(self) -> List[Address]:
        return list(self._handlers)

    def send(self, src: Address, dst: Address, msg: Any) -> None:
        if self._transport is None or self._transport.is_closing():
            return  # shutting down; drops mirror crash-stop semantics
        try:
            data = encode_frame(msg)
        except WireError:
            self.messages_malformed += 1
            log.exception("unencodable message dropped")
            return
        self.messages_sent += 1
        self.bytes_sent += len(data)
        self._transport.sendto(data, unpack_addr(dst))

    def send_many(self, src: Address, dsts: List[Address],
                  msgs: List[Any]) -> None:
        """Batched ``send``: real sockets gain nothing from batching, so
        this is the plain loop the Transport protocol promises."""
        send = self.send
        for dst, msg in zip(dsts, msgs):
            send(src, dst, msg)

    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, peer: Tuple[str, int]) -> None:
        self.bytes_received += len(data)
        try:
            src = pack_addr(peer[0], peer[1])
            msg, end = decode_frame(data)
            if end != len(data):
                raise WireError(f"{len(data) - end} stray byte(s) in datagram")
        except (WireError, ValueError, OSError):
            self.messages_malformed += 1
            return
        if self._local_addr is None:
            return
        handler = self._handlers.get(self._local_addr)
        if handler is None:
            self.messages_dropped_dead += 1
            return
        self.messages_delivered += 1
        try:
            handler(src, msg)
        except Exception:
            # A handler exception must not unwind into the event loop's
            # datagram machinery; surface it in the log and keep serving.
            log.exception("message handler failed")

    def close(self) -> None:
        """Close the socket; in-flight sends are dropped (crash-stop)."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    @property
    def local_address(self) -> Optional[Address]:
        return self._local_addr

    def counters(self) -> Dict[str, int]:
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped_dead": self.messages_dropped_dead,
            "messages_malformed": self.messages_malformed,
            "socket_errors": self.socket_errors,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }
