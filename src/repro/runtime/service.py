"""One live overlay node: socket, clock, state machine, metrics.

:class:`NodeService` wires an unmodified
:class:`repro.pastry.node.MSPastryNode` to a :class:`UdpTransport` and an
:class:`AsyncioClock` and manages the parts a deployment needs around the
protocol code:

* **seed bootstrap** — the simulator hands joiners a live
  ``NodeDescriptor``; a process only has ``host:port``.  The service
  sends ``StateRequest`` to the seed endpoint (retrying once a second)
  and intercepts the ``StateReply`` to learn the seed's descriptor, then
  calls ``node.join(seed_descriptor)`` — from there the protocol runs
  exactly as in the simulator.
* **graceful shutdown** — ``stop()`` tears down metrics, crashes the
  node (MSPastry departures are fail-stop, cancelling every protocol
  timer), and closes the socket.
* **observability** — ``snapshot()`` is the JSON the metrics endpoint
  serves: identity, leaf set, routing-table fill, transport counters and
  lookup latency/consistency counters.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, List, Optional

from repro.interfaces import Address
from repro.pastry import messages as m
from repro.pastry.config import PastryConfig
from repro.pastry.node import MSPastryNode
from repro.pastry.nodeid import n_rows
from repro.runtime.clock import AsyncioClock
from repro.runtime.metrics import MetricsServer
from repro.runtime.transport import UdpTransport, unpack_addr

#: seconds between StateRequest retries while locating the seed
BOOTSTRAP_RETRY = 1.0
#: bootstrap attempts before the service reports failure
MAX_BOOTSTRAP_ATTEMPTS = 30


class NodeService:
    """Life cycle of one MSPastry node on real sockets.

    Build with :meth:`start`; drive lookups with :meth:`issue_lookup`;
    tear down with :meth:`stop`.
    """

    def __init__(self) -> None:
        self.clock: AsyncioClock = None  # type: ignore[assignment]
        self.transport: UdpTransport = None  # type: ignore[assignment]
        self.node: MSPastryNode = None  # type: ignore[assignment]
        self.metrics: Optional[MetricsServer] = None
        self._owns_clock = False
        self._started_at = 0.0
        self._seed_addr: Optional[Address] = None
        self._awaiting_seed = False
        self._bootstrap_attempts = 0
        self._bootstrap_timer = None
        self.bootstrap_failed = False
        self._stopped = False
        self.lookups_issued = 0
        self.lookups_delivered = 0
        self.lookups_dropped = 0
        self._latencies: List[float] = []
        self._hops: List[int] = []
        self._user_on_deliver: Optional[Callable[..., None]] = None

    @classmethod
    async def start(
        cls,
        *,
        node_id: int,
        rng_seed: int,
        config: Optional[PastryConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        seed_addr: Optional[Address] = None,
        clock: Optional[AsyncioClock] = None,
        metrics_port: Optional[int] = None,
        on_deliver: Optional[Callable[..., None]] = None,
        on_drop: Optional[Callable[..., None]] = None,
        on_active: Optional[Callable[..., None]] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> "NodeService":
        """Bind a socket, build the node, begin joining (or bootstrap).

        ``seed_addr`` None makes this the overlay's first node (active
        immediately); otherwise it is the packed address of any live
        node, typically ``pack_addr(seed_host, seed_port)``.
        ``clock`` may be shared across services in one process.
        """
        self = cls()
        loop = loop if loop is not None else asyncio.get_event_loop()
        self._owns_clock = clock is None
        self.clock = clock if clock is not None else AsyncioClock(loop)
        self.transport = await UdpTransport.open(host, port, loop)
        self._user_on_deliver = on_deliver
        self.node = MSPastryNode(
            self.clock,
            self.transport,
            config if config is not None else PastryConfig(),
            node_id,
            random.Random(rng_seed),
            on_active=on_active,
            on_deliver=self._on_deliver,
            on_drop=self._on_drop(on_drop),
        )
        # Interpose on the node's registered handler so bootstrap can see
        # the seed's StateReply before the (pre-join) node discards it.
        self.transport.register(self.node.addr, self._dispatch,
                                owner=self.node)
        self._started_at = self.clock.now
        if metrics_port is not None:
            self.metrics = MetricsServer(self.snapshot)
            await self.metrics.start(host, metrics_port)
        self._seed_addr = seed_addr
        if seed_addr is None:
            self.node.join(None)
        else:
            self._awaiting_seed = True
            self._send_bootstrap_request()
        return self

    # ------------------------------------------------------------------
    # Seed bootstrap
    # ------------------------------------------------------------------
    def _send_bootstrap_request(self) -> None:
        if not self._awaiting_seed or self._stopped:
            return
        if self._bootstrap_attempts >= MAX_BOOTSTRAP_ATTEMPTS:
            self._awaiting_seed = False
            self.bootstrap_failed = True
            return
        self._bootstrap_attempts += 1
        assert self._seed_addr is not None
        self.transport.send(
            self.node.addr, self._seed_addr,
            m.StateRequest(sender=self.node.descriptor))
        self._bootstrap_timer = self.clock.schedule(
            BOOTSTRAP_RETRY, self._send_bootstrap_request)

    def _dispatch(self, src_addr: int, msg: m.Message) -> None:
        if (self._awaiting_seed and isinstance(msg, m.StateReply)
                and msg.sender is not None):
            self._awaiting_seed = False
            if self._bootstrap_timer is not None:
                self._bootstrap_timer.cancel()
            self.node.join(msg.sender)
            return
        self.node._on_message(src_addr, msg)

    # ------------------------------------------------------------------
    # Lookup bookkeeping
    # ------------------------------------------------------------------
    def issue_lookup(self, key: int, payload: Any = None,
                     register: Optional[Callable[[m.Lookup], None]] = None,
                     ) -> m.Lookup:
        """Create and route a lookup from this node; returns the message.

        When this node is itself the key's root, delivery happens
        synchronously inside routing — ``register`` runs between message
        creation and routing so callers can record bookkeeping that the
        delivery callback will look up.
        """
        msg = self.node.make_lookup(key, payload)
        self.lookups_issued += 1
        if register is not None:
            register(msg)
        self.node.route_lookup(msg)
        return msg

    def _on_deliver(self, node: MSPastryNode, msg: m.Lookup) -> None:
        self.lookups_delivered += 1
        self._latencies.append(self.clock.now - msg.sent_at)
        self._hops.append(msg.hops)
        if self._user_on_deliver is not None:
            self._user_on_deliver(node, msg)

    def _on_drop(self, user: Optional[Callable[..., None]]):
        def on_drop(node: MSPastryNode, msg: m.Lookup) -> None:
            self.lookups_dropped += 1
            if user is not None:
                user(node, msg)
        return on_drop

    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.node is not None and self.node.active

    @property
    def endpoint(self) -> str:
        host, port = unpack_addr(self.node.addr)
        return f"{host}:{port}"

    def snapshot(self) -> Dict[str, Any]:
        """The live network view served by the metrics endpoint."""
        node = self.node
        config = node.config
        total_slots = n_rows(config.b) * (1 << config.b)
        latencies = sorted(self._latencies)
        mid = len(latencies) // 2
        return {
            "schema": "repro-node/1",
            "id": f"{node.id:032x}",
            "endpoint": self.endpoint,
            "addr": node.addr,
            "active": node.active,
            "crashed": node.crashed,
            "uptime": self.clock.now - self._started_at,
            "bootstrap_failed": self.bootstrap_failed,
            "peers": len(node.routing_state_members()),
            "leaf_set": [f"{d.id:032x}" for d in node.leaf_set.members()],
            "leaf_left": len(node.leaf_set.left_side),
            "leaf_right": len(node.leaf_set.right_side),
            "routing_table_entries": len(node.routing_table),
            "routing_table_fill": len(node.routing_table) / total_slots,
            "transport": self.transport.counters(),
            "lookups": {
                "issued": self.lookups_issued,
                "delivered_here": self.lookups_delivered,
                "dropped_here": self.lookups_dropped,
                "latency_ms_p50": (
                    round(latencies[mid] * 1000.0, 3) if latencies else None),
            },
        }

    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """Graceful shutdown: metrics, protocol timers, then the socket."""
        if self._stopped:
            return
        self._stopped = True
        self._awaiting_seed = False
        if self._bootstrap_timer is not None:
            self._bootstrap_timer.cancel()
        if self.metrics is not None:
            await self.metrics.stop()
        if self.node is not None and not self.node.crashed:
            # Fail-stop departure: MSPastry has no leave protocol (DSN'04
            # §3 treats departures as failures), so shutdown is crash().
            self.node.crash()
        if self.transport is not None:
            self.transport.close()
        if self._owns_clock and self.clock is not None:
            self.clock.close()
