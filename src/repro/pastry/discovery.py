"""Nearest-neighbour seed discovery (paper §2, after Castro et al. [4, 5]).

A joining node obtains a random overlay node, then walks towards smaller
measured network distance: it asks the current candidate for its routing
state, measures the distance to the returned nodes with *single* distance
probes (cutting join latency; later measurements use the full probe
sequence), and hops to the closest node found.  The walk terminates when no
improvement is found or after a bounded number of iterations, and the
closest node seen seeds the join.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.pastry import messages as m
from repro.pastry.nodeid import NodeDescriptor

MAX_ITERATIONS = 5
MAX_CANDIDATES_PER_ROUND = 16


class SeedDiscovery:
    """One nearest-neighbour walk; constructed per join attempt."""

    def __init__(
        self,
        node,
        start: NodeDescriptor,
        done: Callable[[NodeDescriptor], None],
    ) -> None:
        self._node = node
        self._done = done
        self._visited: Set[int] = set()
        self._best = start
        self._best_rtt: Optional[float] = None
        self._iterations = 0
        self._outstanding = 0
        self._round_best: Optional[NodeDescriptor] = None
        self._round_best_rtt = float("inf")
        self._timeout = None
        self._finished = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._node.prox.measure(self._best, self._measured_start, single=True)

    def _measured_start(self, rtt: Optional[float]) -> None:
        if self._finished:
            return
        self._best_rtt = rtt if rtt is not None else float("inf")
        self._ask(self._best)

    def _ask(self, target: NodeDescriptor) -> None:
        self._visited.add(target.id)
        self._iterations += 1
        self._node.send(target, m.StateRequest())
        self._timeout = self._node.sim.schedule(
            self._node.config.probe_timeout * 2, self._request_timeout
        )

    def _request_timeout(self) -> None:
        self._finish()

    # ------------------------------------------------------------------
    def on_state_reply(self, sender: NodeDescriptor, msg: m.StateReply) -> None:
        if self._finished or self._timeout is None:
            return
        self._timeout.cancel()
        self._timeout = None
        candidates = [
            d
            for d in msg.nodes
            if d.id not in self._visited and d.id != self._node.id
        ][:MAX_CANDIDATES_PER_ROUND]
        if not candidates:
            self._finish()
            return
        self._round_best = None
        self._round_best_rtt = float("inf")
        self._outstanding = len(candidates)
        for desc in candidates:
            self._node.prox.measure(
                desc, self._make_collector(desc), single=True
            )

    def _make_collector(self, desc: NodeDescriptor):
        def collect(rtt: Optional[float]) -> None:
            if self._finished:
                return
            self._outstanding -= 1
            if rtt is not None and rtt < self._round_best_rtt:
                self._round_best = desc
                self._round_best_rtt = rtt
            if self._outstanding == 0:
                self._round_done()

        return collect

    def _round_done(self) -> None:
        improved = (
            self._round_best is not None
            and (self._best_rtt is None or self._round_best_rtt < self._best_rtt)
        )
        if improved:
            self._best = self._round_best
            self._best_rtt = self._round_best_rtt
            if self._iterations < MAX_ITERATIONS:
                self._ask(self._best)
                return
        self._finish()

    # ------------------------------------------------------------------
    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self._timeout is not None:
            self._timeout.cancel()
        self._done(self._best)

    def cancel(self) -> None:
        self._finished = True
        if self._timeout is not None:
            self._timeout.cancel()
