"""MSPastry: the paper's structured overlay with dependable routing.

This package implements the full protocol stack described in sections 2-4 of
the paper:

* Pastry identifier space, leaf sets and routing tables (§2),
* the consistent-routing algorithm of Figure 2 — join by leaf-set probing,
  eager leaf-set repair, activation only after all probes agree (§3.1),
* reliable routing: per-hop acks with aggressive TCP-style retransmission
  timers and rerouting around suspected nodes (§3.2),
* low-overhead failure detection: single left-neighbour heartbeats, active
  routing-table liveness probes with a self-tuned period derived from the
  raw-loss-rate model, and suppression of probes by regular traffic (§4.1),
* proximity neighbour selection with constrained gossiping and symmetric
  distance probes (§4.2).
"""

from repro.pastry.config import PastryConfig
from repro.pastry.leafset import LeafSet
from repro.pastry.node import MSPastryNode
from repro.pastry.nodeid import NodeDescriptor
from repro.pastry.routingtable import RoutingTable

__all__ = [
    "LeafSet",
    "MSPastryNode",
    "NodeDescriptor",
    "PastryConfig",
    "RoutingTable",
]
