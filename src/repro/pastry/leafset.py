"""Pastry leaf set: the l/2 closest nodeIds on each side of the owner.

The leaf sets connect the overlay nodes in a ring and are the sole state
needed for consistent routing (paper §3.1).  With fewer than ``l`` known
members the two sides wrap around the ring and overlap — that overlap is how
we detect that the leaf set spans the entire (known) ring, which is the
completeness condition for small overlays.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pastry.nodeid import (
    NodeDescriptor,
    clockwise_distance,
    counter_clockwise_distance,
    is_closer_root,
)


class LeafSet:
    def __init__(self, owner: NodeDescriptor, size: int) -> None:
        if size < 2 or size % 2 != 0:
            raise ValueError(f"leaf set size must be even and >= 2: {size}")
        self.owner = owner
        self.size = size  # l
        self.version = 0  # bumped on every membership change
        self._members: Dict[int, NodeDescriptor] = {}
        self._left: Optional[List[NodeDescriptor]] = None
        self._right: Optional[List[NodeDescriptor]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, desc: NodeDescriptor) -> bool:
        """Insert a node; returns True if it is a member afterwards."""
        if desc.id == self.owner.id:
            return False
        previous = self._members.get(desc.id)
        if previous is not None and previous.addr == desc.addr:
            return True  # already a member, nothing changed
        self._members[desc.id] = desc
        self._invalidate()
        self._prune()
        admitted = desc.id in self._members
        if admitted:
            self.version += 1
        return admitted

    def remove(self, node_id: int) -> bool:
        if self._members.pop(node_id, None) is None:
            return False
        self.version += 1
        self._invalidate()
        return True

    def _prune(self) -> None:
        """Drop members that fall outside both sides."""
        keep = {d.id for d in self.left_side} | {d.id for d in self.right_side}
        if len(keep) != len(self._members):
            self._members = {i: self._members[i] for i in keep}
            self._invalidate()

    def _invalidate(self) -> None:
        self._left = None
        self._right = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def left_side(self) -> List[NodeDescriptor]:
        """Members counter-clockwise of the owner, closest first."""
        if self._left is None:
            ordered = sorted(
                self._members.values(),
                key=lambda d: counter_clockwise_distance(self.owner.id, d.id),
            )
            self._left = ordered[: self.size // 2]
        return self._left

    @property
    def right_side(self) -> List[NodeDescriptor]:
        """Members clockwise of the owner, closest first."""
        if self._right is None:
            ordered = sorted(
                self._members.values(),
                key=lambda d: clockwise_distance(self.owner.id, d.id),
            )
            self._right = ordered[: self.size // 2]
        return self._right

    @property
    def leftmost(self) -> Optional[NodeDescriptor]:
        left = self.left_side
        return left[-1] if left else None

    @property
    def rightmost(self) -> Optional[NodeDescriptor]:
        right = self.right_side
        return right[-1] if right else None

    @property
    def left_neighbour(self) -> Optional[NodeDescriptor]:
        left = self.left_side
        return left[0] if left else None

    @property
    def right_neighbour(self) -> Optional[NodeDescriptor]:
        right = self.right_side
        return right[0] if right else None

    def members(self) -> List[NodeDescriptor]:
        return list(self._members.values())

    def get(self, node_id: int) -> Optional[NodeDescriptor]:
        return self._members.get(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Predicates used by routing and the consistency protocol
    # ------------------------------------------------------------------
    def wrapped(self) -> bool:
        """Whether the two sides share a member.

        With per-direction closest-first sides this is equivalent (by
        pigeonhole) to knowing fewer than ``l`` members: either the overlay
        really is small and the leaf set spans the whole ring, or the set
        lost members and is mid-repair; the owner cannot distinguish the two
        locally, so routing treats the set as ring-covering while the repair
        machinery (probe announcements plus extreme re-probing) refills it.
        """
        return 0 < len(self._members) < self.size

    @property
    def complete(self) -> bool:
        """True when both sides are full or the set wraps the whole ring."""
        if len(self._members) == 0:
            return False
        half = self.size // 2
        if len(self.left_side) == half and len(self.right_side) == half:
            return True
        return self.wrapped()

    def covers(self, key: int) -> bool:
        """Whether ``key`` lies on the leftmost→rightmost arc through the owner."""
        if len(self._members) == 0:
            return True  # single-node overlay: the owner is root of everything
        if self.wrapped():
            return True  # the leaf set spans the entire known ring
        leftmost, rightmost = self.leftmost, self.rightmost
        if leftmost is None or rightmost is None:
            return False  # one side empty: deliveries are suspended (§3.1)
        span = clockwise_distance(leftmost.id, rightmost.id)
        return clockwise_distance(leftmost.id, key) <= span

    def would_admit(self, desc: NodeDescriptor) -> bool:
        """Whether ``desc`` would become a member if added (without adding).

        Used to avoid probing leaf-set candidates that would be pruned
        immediately: a candidate is admissible when either side is not full
        or it is closer than the current extreme on that side.
        """
        if desc.id == self.owner.id or desc.id in self._members:
            return False
        half = self.size // 2
        left, right = self.left_side, self.right_side
        admit_left = len(left) < half or counter_clockwise_distance(
            self.owner.id, desc.id
        ) < counter_clockwise_distance(self.owner.id, left[-1].id)
        admit_right = len(right) < half or clockwise_distance(
            self.owner.id, desc.id
        ) < clockwise_distance(self.owner.id, right[-1].id)
        return admit_left or admit_right

    def closest_to(self, key: int) -> NodeDescriptor:
        """Member (or owner) with minimal ring distance to ``key``."""
        best = self.owner
        for desc in self._members.values():
            if is_closer_root(desc.id, best.id, key):
                best = desc
        return best
