"""Pastry leaf set: the l/2 closest nodeIds on each side of the owner.

The leaf sets connect the overlay nodes in a ring and are the sole state
needed for consistent routing (paper §3.1).  With fewer than ``l`` known
members the two sides wrap around the ring and overlap — that overlap is how
we detect that the leaf set spans the entire (known) ring, which is the
completeness condition for small overlays.

Storage is a sorted ring (parallel arrays of clockwise distance and
descriptor, maintained with ``bisect``) so the two sides are O(half) slices
instead of a full re-sort per read after every membership change; clockwise
distances from the owner are unique, so the slices are exactly the lists
the previous ``sorted()``-per-access implementation produced and the
protocol-visible iteration orders (``members()``, pruning) are unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional

from repro.pastry.nodeid import (
    ID_SPACE,
    NodeDescriptor,
    is_closer_root,
)


class LeafSet:
    __slots__ = (
        "owner",
        "size",
        "version",
        "_members",
        "_owner_id",
        "_half",
        "_ring_keys",
        "_ring",
        "_left",
        "_right",
        "_canonical",
        "_members_list",
    )

    def __init__(self, owner: NodeDescriptor, size: int) -> None:
        if size < 2 or size % 2 != 0:
            raise ValueError(f"leaf set size must be even and >= 2: {size}")
        self.owner = owner
        self.size = size  # l
        self.version = 0  # bumped on every membership change
        self._members: Dict[int, NodeDescriptor] = {}
        self._owner_id = owner.id
        self._half = size // 2
        # Sorted ring: clockwise distance from the owner (ascending, unique)
        # and the member descriptors in the same order.
        self._ring_keys: List[int] = []
        self._ring: List[NodeDescriptor] = []
        self._left: Optional[List[NodeDescriptor]] = None
        self._right: Optional[List[NodeDescriptor]] = None
        # True while _members is known to be in the canonical order a
        # _prune rebuild would produce for the current membership; lets
        # add() skip insert-then-prune-straight-out round trips.
        self._canonical = False
        self._members_list: Optional[List[NodeDescriptor]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, desc: NodeDescriptor) -> bool:
        """Insert a node; returns True if it is a member afterwards."""
        if desc.id == self._owner_id:
            return False
        previous = self._members.get(desc.id)
        if previous is not None and previous.addr == desc.addr:
            return True  # already a member, nothing changed
        cw = (desc.id - self._owner_id) % ID_SPACE
        if previous is None and len(self._ring) >= self.size and self._canonical:
            # A non-member falling strictly inside both full sides would be
            # inserted mid-ring and pruned straight back out: the ring ends
            # up exactly as before and the only side effect is the _members
            # rebuild.  With _members already in the canonical rebuild order
            # (which depends only on the surviving membership, not on the
            # rejected candidate) that rebuild is a no-op, so skip the whole
            # round trip.  Equality with a stored key is impossible:
            # clockwise distances are unique and desc is not a member.
            keys = self._ring_keys
            half = self._half
            if keys[half - 1] <= cw <= keys[len(keys) - half]:
                return False
        self._members[desc.id] = desc
        i = bisect_left(self._ring_keys, cw)
        if previous is None:
            self._ring_keys.insert(i, cw)
            self._ring.insert(i, desc)
            self._canonical = False
        else:
            self._ring[i] = desc  # same id, same distance: address update
        self._invalidate()
        self._prune()
        admitted = desc.id in self._members
        if admitted:
            self.version += 1
        return admitted

    def remove(self, node_id: int) -> bool:
        if self._members.pop(node_id, None) is None:
            return False
        cw = (node_id - self._owner_id) % ID_SPACE
        i = bisect_left(self._ring_keys, cw)
        del self._ring_keys[i]
        del self._ring[i]
        self.version += 1
        self._canonical = False
        self._invalidate()
        return True

    def _prune(self) -> None:
        """Drop members that fall outside both sides.

        The two sides are the ring's head and tail slices, so anything
        pruned is exactly the ring's middle; the ``_members`` rebuild keeps
        the historical set-iteration insertion order (protocol-visible via
        ``members()``).
        """
        ring = self._ring
        if len(ring) <= self.size:
            return  # both sides cover every member
        # Slice the ring directly instead of going through the side
        # properties (which would build and cache lists that the
        # _invalidate below throws away).  The set-build sequence —
        # reversed ring tail, then ring head, then a non-mutating union —
        # is kept exactly: keep-set iteration order decides the rebuilt
        # _members insertion order, which is protocol-visible through
        # members().
        half = self._half
        members = self._members
        keep = {d.id for d in ring[len(ring) - half:][::-1]} | {
            d.id for d in ring[:half]
        }
        self._members = {i: members[i] for i in keep}
        del self._ring_keys[half:-half]
        del ring[half:-half]
        self._canonical = True
        self._invalidate()

    def _invalidate(self) -> None:
        self._left = None
        self._right = None
        self._members_list = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def left_side(self) -> List[NodeDescriptor]:
        """Members counter-clockwise of the owner, closest first."""
        if self._left is None:
            # Counter-clockwise distance is ID_SPACE - clockwise distance,
            # so closest-first on the left is the ring tail, reversed.
            n = len(self._ring)
            self._left = self._ring[max(0, n - self._half):][::-1]
        return self._left

    @property
    def right_side(self) -> List[NodeDescriptor]:
        """Members clockwise of the owner, closest first."""
        if self._right is None:
            self._right = self._ring[: self._half]
        return self._right

    @property
    def leftmost(self) -> Optional[NodeDescriptor]:
        left = self.left_side
        return left[-1] if left else None

    @property
    def rightmost(self) -> Optional[NodeDescriptor]:
        right = self.right_side
        return right[-1] if right else None

    @property
    def left_neighbour(self) -> Optional[NodeDescriptor]:
        left = self.left_side
        return left[0] if left else None

    @property
    def right_neighbour(self) -> Optional[NodeDescriptor]:
        right = self.right_side
        return right[0] if right else None

    def members(self) -> List[NodeDescriptor]:
        """Members in protocol-visible (historical insertion) order.

        The list is cached until the next membership/address change and
        shared between callers; nothing in the codebase mutates it (callers
        iterate or concatenate), which keeps the cache sound.
        """
        mem = self._members_list
        if mem is None:
            mem = self._members_list = list(self._members.values())
        return mem

    def get(self, node_id: int) -> Optional[NodeDescriptor]:
        return self._members.get(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Predicates used by routing and the consistency protocol
    # ------------------------------------------------------------------
    def wrapped(self) -> bool:
        """Whether the two sides share a member.

        With per-direction closest-first sides this is equivalent (by
        pigeonhole) to knowing fewer than ``l`` members: either the overlay
        really is small and the leaf set spans the whole ring, or the set
        lost members and is mid-repair; the owner cannot distinguish the two
        locally, so routing treats the set as ring-covering while the repair
        machinery (probe announcements plus extreme re-probing) refills it.
        """
        return 0 < len(self._members) < self.size

    @property
    def complete(self) -> bool:
        """True when both sides are full or the set wraps the whole ring."""
        n = len(self._members)
        if n == 0:
            return False
        if n >= self._half:  # both closest-first sides hold a full half
            return True
        return self.wrapped()

    def covers(self, key: int) -> bool:
        """Whether ``key`` lies on the leftmost→rightmost arc through the owner."""
        if len(self._members) == 0:
            return True  # single-node overlay: the owner is root of everything
        if self.wrapped():
            return True  # the leaf set spans the entire known ring
        leftmost, rightmost = self.leftmost, self.rightmost
        if leftmost is None or rightmost is None:
            return False  # one side empty: deliveries are suspended (§3.1)
        span = (rightmost.id - leftmost.id) % ID_SPACE
        return (key - leftmost.id) % ID_SPACE <= span

    def would_admit(self, desc: NodeDescriptor) -> bool:
        """Whether ``desc`` would become a member if added (without adding).

        Used to avoid probing leaf-set candidates that would be pruned
        immediately: a candidate is admissible when either side is not full
        or it is closer than the current extreme on that side.
        """
        if desc.id == self._owner_id or desc.id in self._members:
            return False
        n = len(self._ring)
        half = self._half
        if n < half:
            return True  # neither side is full yet
        cw = (desc.id - self._owner_id) % ID_SPACE
        # Closer than the right extreme (ring head holds the smallest
        # clockwise distances) or the left extreme (ring tail, since
        # counter-clockwise distance is ID_SPACE - clockwise distance).
        return cw < self._ring_keys[half - 1] or cw > self._ring_keys[n - half]

    def closest_to(self, key: int) -> NodeDescriptor:
        """Member (or owner) with minimal ring distance to ``key``."""
        best = self.owner
        for desc in self._members.values():
            if is_closer_root(desc.id, best.id, key):
                best = desc
        return best
