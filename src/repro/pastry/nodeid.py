"""Pastry identifier space: 128-bit ring arithmetic and digit helpers.

NodeIds and keys are 128-bit unsigned integers; a key is mapped to the
active node whose identifier is numerically closest to it modulo 2^128.
Routing interprets identifiers as digit strings in base 2^b.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Tuple

ID_BITS = 128
ID_SPACE = 1 << ID_BITS
HALF_SPACE = ID_SPACE >> 1


@dataclass(frozen=True, slots=True)
class NodeDescriptor:
    """Identity of an overlay node: nodeId plus network address."""

    id: int
    addr: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.id:032x}@{self.addr})"


_DESCRIPTOR_INTERN: Dict[Tuple[int, int], NodeDescriptor] = {}


def intern_descriptor(node_id: int, addr: int) -> NodeDescriptor:
    """Canonical ``NodeDescriptor`` for ``(node_id, addr)``.

    Every caller asking for the same identity gets the *same* object, so a
    live node is represented by one descriptor shared by reference across
    leaf sets, routing tables and in-flight messages instead of thousands
    of equal copies.  The table is bounded by the number of distinct nodes
    ever created in the process (descriptors are a few dozen bytes each).
    """
    key = (node_id, addr)
    desc = _DESCRIPTOR_INTERN.get(key)
    if desc is None:
        desc = NodeDescriptor(node_id, addr)
        _DESCRIPTOR_INTERN[key] = desc
    return desc


def random_nodeid(rng: random.Random) -> int:
    """Uniformly random 128-bit nodeId."""
    return rng.getrandbits(ID_BITS)


def key_of(data: bytes) -> int:
    """Map arbitrary bytes into the identifier space (SHA-1 style)."""
    return int.from_bytes(hashlib.sha1(data).digest()[:16], "big")


def n_rows(b: int) -> int:
    """Number of routing-table rows for digit size ``b``.

    When ``b`` does not divide 128 (the paper sweeps b = 1..5) the last row
    holds a shorter, partial digit.
    """
    if b < 1:
        raise ValueError(f"b must be >= 1: {b}")
    return (ID_BITS + b - 1) // b


def digit(identifier: int, row: int, b: int) -> int:
    """The ``row``-th base-2^b digit of ``identifier``, most significant first.

    The final digit is partial when ``b`` does not divide 128.
    """
    shift = ID_BITS - (row + 1) * b
    if shift >= 0:
        return (identifier >> shift) & ((1 << b) - 1)
    return identifier & ((1 << (ID_BITS - row * b)) - 1)


def shared_prefix_length(a: int, b_id: int, b: int) -> int:
    """Number of leading base-2^b digits shared by two identifiers."""
    if a == b_id:
        return n_rows(b)
    xor = a ^ b_id
    # Position of the highest differing bit, counted from the MSB.
    high_bit = ID_BITS - xor.bit_length()
    return high_bit // b


def ring_distance(a: int, b_id: int) -> int:
    """Shortest distance around the ring (used for root determination)."""
    d = (a - b_id) % ID_SPACE
    return min(d, ID_SPACE - d)


def clockwise_distance(a: int, b_id: int) -> int:
    """Distance travelling clockwise (increasing ids) from ``a`` to ``b_id``."""
    return (b_id - a) % ID_SPACE


def counter_clockwise_distance(a: int, b_id: int) -> int:
    """Distance travelling counter-clockwise from ``a`` to ``b_id``."""
    return (a - b_id) % ID_SPACE


def is_closer_root(candidate: int, incumbent: int, key: int) -> bool:
    """Whether ``candidate`` is a strictly better root for ``key``.

    Ties in ring distance are broken towards the numerically smaller
    identifier so every node resolves the same root.
    """
    dc, di = ring_distance(candidate, key), ring_distance(incumbent, key)
    if dc != di:
        return dc < di
    return candidate < incumbent
