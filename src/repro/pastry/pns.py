"""Proximity neighbour selection (paper §2, §4.2).

PNS fills each routing-table slot with the *network-closest* node among
those with the required id prefix.  MSPastry implements it with constrained
gossiping:

* seed discovery: a joining node locates a nearby overlay node with the
  nearest-neighbour algorithm (walk from a random node towards smaller
  measured distances) before routing its join request,
* round-trip measurement: a sequence of distance probes (default 3, spaced
  1 s apart) whose median is the proximity sample; a *single* probe is used
  during seed discovery to cut join latency,
* symmetric probing: after i measures the RTT to j it reports the value to
  j, so j can consider i without probing back — almost halving probe count,
* join announcements: the joiner sends row r of its table to every node in
  that row; receivers probe unknown entries and keep whichever is closer,
* periodic routing-table maintenance: every ~20 minutes a node asks one
  member of each row for that row and probes the unknown entries,
* passive repair: an empty slot hit during routing triggers a slot request
  to the next hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Callable, Dict, List, Optional

from repro.pastry import messages as m
from repro.pastry.nodeid import NodeDescriptor


@dataclass(slots=True)
class _Measurement:
    target: NodeDescriptor
    single: bool
    samples: List[float] = field(default_factory=list)
    resolved: int = 0  # probes answered or timed out
    sent: int = 0
    sent_at: Dict[int, float] = field(default_factory=dict)
    timers: Dict[int, object] = field(default_factory=dict)
    #: handles of the staggered _send_probe events; kept on the measurement
    #: so they are released the moment it completes (a long-lived node would
    #: otherwise accumulate hundreds of consumed 72-byte handles).
    sends: List[object] = field(default_factory=list)
    callbacks: List[Callable[[Optional[float]], None]] = field(default_factory=list)


class ProximityManager:
    """Distance probing and PNS bookkeeping for one node.

    The manager owns the proximity cache (node id -> measured RTT) that the
    routing table's PNS replacement policy consults.  It never reads the
    topology directly: all proximity values are obtained through protocol
    messages, exactly as a deployment would.
    """

    __slots__ = ("_node", "_config", "_sim", "proximity", "_measuring", "_orphaned_sends")

    def __init__(self, node) -> None:
        self._node = node
        self._config = node.config
        self._sim = node.sim
        self.proximity: Dict[int, float] = {}
        self._measuring: Dict[int, _Measurement] = {}
        #: still-scheduled _send_probe handles of *forgotten* measurements.
        #: They must stay uncancelled (firing them is a no-op, and cancelling
        #: would perturb the executed-event stream) but cancel_all() has to
        #: be able to cancel them at crash time, exactly as it always could.
        self._orphaned_sends: List[object] = []

    # ------------------------------------------------------------------
    # Proximity cache
    # ------------------------------------------------------------------
    def proximity_of(self, desc: NodeDescriptor) -> float:
        """Cached proximity; unknown nodes rank last for PNS replacement."""
        return self.proximity.get(desc.id, float("inf"))

    def record(self, node_id: int, rtt: float, addr: Optional[int] = None) -> None:
        self.proximity[node_id] = rtt
        if addr is not None:
            self._node.rto_table.seed(addr, rtt)

    def forget(self, node_id: int) -> None:
        self.proximity.pop(node_id, None)
        measurement = self._measuring.pop(node_id, None)
        if measurement is not None:
            for timer in measurement.timers.values():
                timer.cancel()
            if len(self._orphaned_sends) > 16:
                self._orphaned_sends = [
                    h for h in self._orphaned_sends if h.active
                ]
            self._orphaned_sends.extend(
                h for h in measurement.sends if h.active
            )

    # ------------------------------------------------------------------
    # Distance measurement
    # ------------------------------------------------------------------
    def measure(
        self,
        target: NodeDescriptor,
        callback: Optional[Callable[[Optional[float]], None]] = None,
        single: bool = False,
    ) -> None:
        """Measure the RTT to ``target``; callback gets the median (or None).

        Concurrent requests for the same target share one measurement.
        A completed measurement is reported to the peer when symmetric
        probing is on.
        """
        cached = self.proximity.get(target.id)
        if cached is not None:
            if callback is not None:
                callback(cached)
            return
        measurement = self._measuring.get(target.id)
        if measurement is not None:
            if callback is not None:
                measurement.callbacks.append(callback)
            return
        measurement = _Measurement(target=target, single=single)
        if callback is not None:
            measurement.callbacks.append(callback)
        self._measuring[target.id] = measurement
        n_probes = 1 if single else self._config.distance_probe_count
        for i in range(n_probes):
            delay = i * self._config.distance_probe_spacing
            handle = self._sim.schedule(delay, self._send_probe, target.id)
            measurement.sends.append(handle)

    def _send_probe(self, target_id: int) -> None:
        measurement = self._measuring.get(target_id)
        if measurement is None:
            return
        measurement.sent += 1
        seq = measurement.sent
        measurement.sent_at[seq] = self._sim.now
        measurement.timers[seq] = self._sim.schedule(
            self._config.probe_timeout, self._probe_timeout, target_id, seq
        )
        self._node.send(measurement.target, m.DistanceProbe(seq=seq))

    def on_probe(self, sender: NodeDescriptor, msg: m.DistanceProbe) -> None:
        self._node.send(sender, m.DistanceProbeReply(seq=msg.seq))

    def on_probe_reply(self, sender: NodeDescriptor, msg: m.DistanceProbeReply) -> None:
        measurement = self._measuring.get(sender.id)
        if measurement is None:
            return
        sent_at = measurement.sent_at.pop(msg.seq, None)
        if sent_at is None:
            return  # duplicate or late reply
        timer = measurement.timers.pop(msg.seq, None)
        if timer is not None:
            timer.cancel()
        measurement.samples.append(self._sim.now - sent_at)
        measurement.resolved += 1
        self._maybe_finish(sender.id, measurement)

    def _probe_timeout(self, target_id: int, seq: int) -> None:
        measurement = self._measuring.get(target_id)
        if measurement is None:
            return
        measurement.sent_at.pop(seq, None)
        measurement.timers.pop(seq, None)
        measurement.resolved += 1
        self._maybe_finish(target_id, measurement)

    def _maybe_finish(self, target_id: int, measurement: _Measurement) -> None:
        total = 1 if measurement.single else self._config.distance_probe_count
        if measurement.resolved < total:
            return
        del self._measuring[target_id]
        value = median(measurement.samples) if measurement.samples else None
        if value is not None:
            self.record(target_id, value, measurement.target.addr)
            if self._config.symmetric_distance_probes:
                self._node.send(measurement.target, m.DistanceReport(rtt=value))
        for callback in measurement.callbacks:
            callback(value)

    def on_report(self, sender: NodeDescriptor, msg: m.DistanceReport) -> None:
        """Symmetric probing: adopt the peer's measurement of our RTT."""
        self.record(sender.id, msg.rtt, sender.addr)
        self._node.consider_for_routing_table(sender)

    # ------------------------------------------------------------------
    # Join announcements and routing-table gossip
    # ------------------------------------------------------------------
    def announce_rows(self) -> None:
        """Send row r of the routing table to each node in that row (§2)."""
        table = self._node.routing_table
        for row in table.occupied_rows():
            entries = table.row_entries(row)
            for target in entries:
                self._node.send(
                    target, m.RowAnnounce(row=row, entries=list(entries))
                )

    def probe_routing_state(self) -> None:
        """Joining node measures distances to everyone in its routing state.

        The peers wait for the symmetric DistanceReport instead of probing
        back (paper §4.2: the joiner initiates, nodeIds break further ties).
        """
        for desc in self._node.routing_state_members():
            self.measure(desc)

    def on_row_announce(self, sender: NodeDescriptor, msg: m.RowAnnounce) -> None:
        self._consider_entries(msg.entries)

    def on_row_request(self, sender: NodeDescriptor, msg: m.RowRequest) -> None:
        entries = self._node.routing_table.row_entries(msg.row)
        self._node.send(sender, m.RowReply(row=msg.row, entries=entries))

    def on_row_reply(self, sender: NodeDescriptor, msg: m.RowReply) -> None:
        self._consider_entries(msg.entries)

    def _consider_entries(self, entries: List[NodeDescriptor]) -> None:
        """Probe unknown candidates, then PNS-consider them for the table."""
        node = self._node
        for desc in entries:
            if desc.id == node.id or node.is_failed(desc.id):
                continue
            if desc.id in self.proximity:
                node.consider_for_routing_table(desc)
            else:
                self.measure(desc, self._make_considerer(desc))

    def _make_considerer(self, desc: NodeDescriptor):
        def consider(rtt: Optional[float]) -> None:
            if rtt is not None:
                self._node.consider_for_routing_table(desc)

        return consider

    def run_maintenance(self) -> None:
        """Periodic routing-table maintenance sweep (every ~20 min, §2)."""
        table = self._node.routing_table
        rng = self._node.rng
        for row in table.occupied_rows():
            entries = table.row_entries(row)
            if entries:
                self._node.send(rng.choice(entries), m.RowRequest(row=row))

    # ------------------------------------------------------------------
    def cancel_all(self) -> None:
        for measurement in self._measuring.values():
            for timer in measurement.timers.values():
                timer.cancel()
            for handle in measurement.sends:
                handle.cancel()
        self._measuring.clear()
        for handle in self._orphaned_sends:
            handle.cancel()
        self._orphaned_sends.clear()
