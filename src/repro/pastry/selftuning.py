"""Self-tuning of the active probing period (paper §4.1).

The expected probability of forwarding to a faulty node at one hop is

    Pf(T, mu) = 1 - (1 / (T mu)) (1 - e^(-T mu))

where ``T`` is the maximum fault-detection time and ``mu`` the node failure
rate.  With h expected overlay hops (last hop via leaf set, the rest via the
routing table) the *raw loss rate* — loss absent acks/retransmissions — is

    Lr = 1 - (1 - Pf(Tls + (r+1)To, mu)) (1 - Pf(Trt + (r+1)To, mu))^(h-1)

MSPastry fixes Tls, To and the retry count, and periodically solves this
equation for the routing-table probing period Trt that achieves a target Lr
with minimum probing traffic.  ``N`` is estimated from the leaf-set nodeId
density and ``mu`` from observed failures in the routing state; each node
piggybacks its local estimate and adopts the median across its routing state.
"""

from __future__ import annotations

import math
from collections import deque
from statistics import median
from typing import Deque, Dict, Optional

from repro.pastry.config import PastryConfig
from repro.pastry.leafset import LeafSet
from repro.pastry.nodeid import ID_SPACE, clockwise_distance


def prob_faulty(detection_time: float, mu: float) -> float:
    """Pf(T, mu): probability a routing-state entry is faulty when used."""
    if mu <= 0.0 or detection_time <= 0.0:
        return 0.0
    x = detection_time * mu
    if x < 1e-8:
        return x / 2.0  # second-order Taylor expansion; avoids cancellation
    return 1.0 - (1.0 - math.exp(-x)) / x


def expected_hops(n_nodes: float, b: int) -> float:
    """Average route length: (2^b - 1)/2^b * log_{2^b} N (at least 1)."""
    if n_nodes <= 1:
        return 1.0
    base = float(1 << b)
    return max(1.0, (base - 1.0) / base * math.log(n_nodes, base))


def raw_loss_rate(
    rt_probe_period: float,
    mu: float,
    n_nodes: float,
    config: PastryConfig,
) -> float:
    """Lr for a given Trt under the current failure rate and overlay size."""
    detect_slack = (config.max_probe_retries + 1) * config.probe_timeout
    p_leaf = prob_faulty(config.heartbeat_period + detect_slack, mu)
    p_rt = prob_faulty(rt_probe_period + detect_slack, mu)
    hops = expected_hops(n_nodes, config.b)
    return 1.0 - (1.0 - p_leaf) * (1.0 - p_rt) ** (hops - 1.0)


def solve_rt_probe_period(
    target_lr: float,
    mu: float,
    n_nodes: float,
    config: PastryConfig,
) -> float:
    """Largest Trt achieving Lr <= target (minimum probing traffic).

    Lr is monotonically increasing in Trt, so this is a bisection.  Clamped
    to [(retries+1)·To, rt_probe_period_max]; if even the lower bound cannot
    reach the target the lower bound is returned (the paper's Trt floor).
    """
    lo = config.rt_probe_period_min
    hi = config.rt_probe_period_max
    # The leaf-set term and hop count of raw_loss_rate do not depend on the
    # probing period; hoist them so the 64-step bisection only re-evaluates
    # the Trt-dependent factor.  The arithmetic per evaluation is unchanged,
    # so the solved period is bit-identical to calling raw_loss_rate.
    detect_slack = (config.max_probe_retries + 1) * config.probe_timeout
    leaf_term = 1.0 - prob_faulty(config.heartbeat_period + detect_slack, mu)
    exp_h = expected_hops(n_nodes, config.b) - 1.0
    if 1.0 - leaf_term * (1.0 - prob_faulty(lo + detect_slack, mu)) ** exp_h >= target_lr:
        return lo
    if 1.0 - leaf_term * (1.0 - prob_faulty(hi + detect_slack, mu)) ** exp_h <= target_lr:
        return hi
    # Inline prob_faulty in the bisection loop (64 evaluations per solve,
    # thousands of solves per simulated hour).  The guard clauses of
    # prob_faulty cannot trigger here — mu > 0 (the lo-bound check above
    # returned otherwise when mu <= 0 gives Lr = 0) and mid + detect_slack
    # > 0 — and the arithmetic is expression-for-expression the same, so
    # the solved period stays bit-identical.
    exp = math.exp
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        x = (mid + detect_slack) * mu
        if x < 1e-8:
            p_rt = x / 2.0
        else:
            p_rt = 1.0 - (1.0 - exp(-x)) / x
        if 1.0 - leaf_term * (1.0 - p_rt) ** exp_h < target_lr:
            lo = mid
        else:
            hi = mid
    return lo


def estimate_overlay_size(leaf_set: LeafSet) -> float:
    """Estimate N from the density of nodeIds in the leaf set (paper [3])."""
    n = len(leaf_set)
    if n == 0:
        return 1.0
    if n < leaf_set.size:
        # The leaf set wraps the whole ring: we see everyone.
        return float(n + 1)
    leftmost, rightmost = leaf_set.leftmost, leaf_set.rightmost
    arc = clockwise_distance(leftmost.id, rightmost.id)
    if arc == 0:
        return float(n + 1)
    # n+1 nodes (members + owner) span `arc`, i.e. n gaps.
    return max(float(n + 1), n * (ID_SPACE / arc))


class FailureRateEstimator:
    """Estimates mu from failures observed in the local routing state.

    A node remembers the times of the last K failures (its own join time is
    inserted when it joins).  With a full history the estimate is
    K / (M * T_kf) where M is the number of unique nodes in the routing
    state and T_kf the span between the first and last remembered failure;
    with k < K failures, the current time stands in for the missing one.
    """

    __slots__ = ("history_size", "_times")

    def __init__(self, history_size: int) -> None:
        if history_size < 1:
            raise ValueError("history_size must be >= 1")
        self.history_size = history_size
        self._times: Deque[float] = deque(maxlen=history_size)

    def start(self, join_time: float) -> None:
        self._times.clear()
        self._times.append(join_time)

    def record_failure(self, time: float) -> None:
        self._times.append(time)

    def estimate(self, now: float, unique_nodes: int) -> float:
        if unique_nodes <= 0 or not self._times:
            return 0.0
        if len(self._times) == self.history_size:
            k = self.history_size
            span = self._times[-1] - self._times[0]
        else:
            k = len(self._times)
            span = now - self._times[0]
        if span <= 0.0:
            return 0.0
        return k / (unique_nodes * span)


class SelfTuner:
    """Per-node self-tuning state: local estimate + median of peers' hints."""

    __slots__ = ("config", "failures", "_hints", "local_period", "mu_estimate", "n_estimate")

    def __init__(self, config: PastryConfig) -> None:
        self.config = config
        self.failures = FailureRateEstimator(config.failure_history_size)
        self._hints: Dict[int, float] = {}  # peer node id -> reported T^l_rt
        self.local_period: float = config.rt_probe_period_max
        self.mu_estimate: float = 0.0
        self.n_estimate: float = 1.0

    def recompute_local(self, now: float, leaf_set: LeafSet, unique_nodes: int) -> float:
        self.mu_estimate = self.failures.estimate(now, unique_nodes)
        self.n_estimate = estimate_overlay_size(leaf_set)
        self.local_period = solve_rt_probe_period(
            self.config.target_raw_loss, self.mu_estimate, self.n_estimate, self.config
        )
        return self.local_period

    def record_hint(self, peer_id: int, period: Optional[float]) -> None:
        if period is not None and period > 0:
            self._hints[peer_id] = period

    def forget_peer(self, peer_id: int) -> None:
        self._hints.pop(peer_id, None)

    def current_period(self) -> float:
        values = list(self._hints.values())
        values.append(self.local_period)
        period = median(values)
        return min(
            self.config.rt_probe_period_max,
            max(self.config.rt_probe_period_min, period),
        )
