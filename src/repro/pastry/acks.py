"""Per-hop acknowledgements with aggressive retransmission (paper §3.2).

Every node along a lookup's overlay route buffers the message after
forwarding it and starts a retransmission timer.  If the next hop does not
ack in time it is *temporarily excluded* from routing (not marked faulty —
aggressive timeouts are prone to false positives) and the message is
rerouted through an alternative entry; a liveness probe is triggered so the
exclusion is either confirmed (node marked faulty) or lifted (probe reply).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.interfaces import Clock, TimerHandle
from repro.pastry.messages import Lookup
from repro.pastry.nodeid import NodeDescriptor


@dataclass(slots=True)
class PendingHop:
    """A forwarded lookup awaiting its per-hop ack."""

    msg: Lookup
    next_hop: NodeDescriptor
    sent_at: float
    attempts: int = 1  # number of distinct hops tried (reroutes)
    same_hop_tries: int = 0  # retransmissions to the current hop
    timer: Optional[TimerHandle] = None
    retransmitted: bool = False  # Karn's rule: no RTT sample after a resend
    excluded: Set[int] = field(default_factory=set)


class HopAckManager:
    """Tracks forwarded lookups for one node.

    Collaborates with the owning node through three callbacks:

    * ``reroute(msg, excluded)`` — re-run the routing function with the
      failed hops excluded,
    * ``suspect(desc)`` — temporarily exclude a node and probe it,
    * ``on_drop(msg)`` — the message exhausted its reroute budget.
    """

    __slots__ = (
        "_sim",
        "_rto",
        "_max_reroutes",
        "_reroute",
        "_suspect",
        "_on_drop",
        "_same_hop_retransmits",
        "_resend",
        "_probe",
        "_pending",
    )

    def __init__(
        self,
        sim: Clock,
        rto_table,
        max_reroutes: int,
        reroute: Callable[[Lookup, Set[int]], None],
        suspect: Callable[[NodeDescriptor], None],
        on_drop: Callable[[Lookup], None],
        same_hop_retransmits: int = 2,
        resend: Optional[Callable[[Lookup, NodeDescriptor], None]] = None,
        probe: Optional[Callable[[NodeDescriptor], None]] = None,
    ) -> None:
        self._sim = sim
        self._rto = rto_table
        self._max_reroutes = max_reroutes
        self._reroute = reroute
        self._suspect = suspect
        self._on_drop = on_drop
        #: TCP-style: retransmit to the same hop (with backoff) this many
        #: times before excluding it — a single lost packet must not push
        #: delivery to the wrong node (consistency under link loss, §3.2)
        self._same_hop_retransmits = same_hop_retransmits
        self._resend = resend
        self._probe = probe
        self._pending: Dict[int, PendingHop] = {}

    # ------------------------------------------------------------------
    def track(self, msg: Lookup, next_hop: NodeDescriptor) -> None:
        """Start (or continue, after a reroute) tracking a forwarded lookup."""
        previous = self._pending.pop(msg.msg_id, None)
        entry = PendingHop(msg=msg, next_hop=next_hop, sent_at=self._sim.now)
        if previous is not None:
            if previous.timer is not None:
                previous.timer.cancel()
            entry.attempts = previous.attempts + 1
            entry.retransmitted = True
            entry.excluded = previous.excluded
        entry.timer = self._sim.schedule(
            self._rto.rto(next_hop.addr), self._timeout, msg.msg_id
        )
        self._pending[msg.msg_id] = entry

    def on_ack(self, msg_id: int, from_addr: int) -> None:
        entry = self._pending.get(msg_id)
        if entry is None or entry.next_hop.addr != from_addr:
            return  # stale ack from a hop we already rerouted away from
        del self._pending[msg_id]
        if entry.timer is not None:
            entry.timer.cancel()
        if not entry.retransmitted:
            self._rto.sample(from_addr, self._sim.now - entry.sent_at)

    def _timeout(self, msg_id: int) -> None:
        entry = self._pending.pop(msg_id, None)
        if entry is None:
            return
        if entry.same_hop_tries < self._same_hop_retransmits and self._resend is not None:
            # Retransmit to the same hop with exponential backoff; kick off
            # a liveness probe so a real failure is detected in parallel.
            entry.same_hop_tries += 1
            entry.retransmitted = True
            entry.sent_at = self._sim.now
            backoff = 2.0 ** entry.same_hop_tries
            entry.timer = self._sim.schedule(
                self._rto.rto(entry.next_hop.addr) * backoff, self._timeout, msg_id
            )
            self._pending[msg_id] = entry
            self._resend(entry.msg, entry.next_hop)
            if self._probe is not None:
                self._probe(entry.next_hop)
            return
        entry.excluded.add(entry.next_hop.id)
        self._suspect(entry.next_hop)
        if entry.attempts > self._max_reroutes:
            self._on_drop(entry.msg)
            return
        # Re-track happens inside reroute via track() when a new hop exists.
        self._pending[msg_id] = entry  # keep exclusion state for track()
        forwarded = self._reroute(entry.msg, entry.excluded)
        if not forwarded:
            self._pending.pop(msg_id, None)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def cancel_all(self) -> None:
        for entry in self._pending.values():
            if entry.timer is not None:
                entry.timer.cancel()
        self._pending.clear()
