"""Overlay protocol messages.

Every message class carries a ``category`` used by the metrics collector for
the control-traffic breakdown of the paper's Figure 4 (distance probes, leaf
set heartbeats/probes, routing-table probes, acks + retransmits, join).
Lookups are application traffic and excluded from control-traffic counts.

``tuning_hint`` piggybacks the sender's locally computed routing-table
probing period T^l_rt (paper §4.1, self-tuning); receivers adopt the median
of hints from their routing state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.pastry.nodeid import NodeDescriptor

# Control-traffic categories (Figure 4 breakdown).
CAT_DISTANCE = "distance_probes"
CAT_LEAFSET = "leafset"
CAT_HEARTBEAT = "heartbeats"
CAT_RT_PROBE = "rt_probes"
CAT_ACK = "acks_retransmits"
CAT_JOIN = "join"
CAT_RT_MAINT = "rt_maintenance"
CAT_LOOKUP = "lookup"


@dataclass(slots=True)
class Message:
    category = "unknown"
    sender: NodeDescriptor = field(default=None)
    tuning_hint: Optional[float] = field(default=None)


@dataclass(slots=True)
class JoinRequest(Message):
    category = CAT_JOIN
    #: join requests are routed like lookups and, like them, per-hop acked
    #: (§3.2): an un-acked join dies silently at the first dead hop, and the
    #: joiner's coarse retry timer is a poor substitute for rerouting
    msg_id: int = 0
    joiner: NodeDescriptor = None
    #: routing-table rows accumulated along the join route: row index ->
    #: descriptors from the node whose prefix match length equals that row
    rows: Dict[int, List[NodeDescriptor]] = field(default_factory=dict)


@dataclass(slots=True)
class JoinReply(Message):
    category = CAT_JOIN
    rows: Dict[int, List[NodeDescriptor]] = field(default_factory=dict)
    leaf_set: List[NodeDescriptor] = field(default_factory=list)


@dataclass(slots=True)
class LsProbe(Message):
    """Leaf set probe (Figure 2): carries the sender's leaf set and failed set."""

    category = CAT_LEAFSET
    leaf_set: List[NodeDescriptor] = field(default_factory=list)
    failed: List[NodeDescriptor] = field(default_factory=list)


@dataclass(slots=True)
class LsProbeReply(Message):
    category = CAT_LEAFSET
    leaf_set: List[NodeDescriptor] = field(default_factory=list)
    failed: List[NodeDescriptor] = field(default_factory=list)


@dataclass(slots=True)
class Heartbeat(Message):
    """Sent every Tls to the left neighbour only (§4.1)."""

    category = CAT_HEARTBEAT


@dataclass(slots=True)
class RtProbe(Message):
    """Liveness probe for a routing-table entry."""

    category = CAT_RT_PROBE
    seq: int = 0


@dataclass(slots=True)
class RtProbeReply(Message):
    category = CAT_RT_PROBE
    seq: int = 0


@dataclass(slots=True)
class DistanceProbe(Message):
    """Round-trip measurement probe for proximity neighbour selection."""

    category = CAT_DISTANCE
    seq: int = 0


@dataclass(slots=True)
class DistanceProbeReply(Message):
    category = CAT_DISTANCE
    seq: int = 0


@dataclass(slots=True)
class DistanceReport(Message):
    """Symmetric probing: tells the peer the RTT we measured to it (§4.2)."""

    category = CAT_DISTANCE
    rtt: float = 0.0


@dataclass(slots=True)
class RowAnnounce(Message):
    """A joining node sends row r of its table to each node in that row."""

    category = CAT_JOIN
    row: int = 0
    entries: List[NodeDescriptor] = field(default_factory=list)


@dataclass(slots=True)
class RowRequest(Message):
    """Periodic routing-table maintenance: ask a row member for its row."""

    category = CAT_RT_MAINT
    row: int = 0


@dataclass(slots=True)
class RowReply(Message):
    category = CAT_RT_MAINT
    row: int = 0
    entries: List[NodeDescriptor] = field(default_factory=list)


@dataclass(slots=True)
class SlotRequest(Message):
    """Passive repair: ask the next hop for an entry for an empty slot."""

    category = CAT_RT_MAINT
    row: int = 0
    col: int = 0


@dataclass(slots=True)
class SlotReply(Message):
    category = CAT_RT_MAINT
    row: int = 0
    col: int = 0
    entry: Optional[NodeDescriptor] = None


@dataclass(slots=True)
class LeafSetRequest(Message):
    """Generalized leaf-set repair: ask for the l+1 closest nodes to a key."""

    category = CAT_LEAFSET
    key: int = 0


@dataclass(slots=True)
class LeafSetReply(Message):
    category = CAT_LEAFSET
    key: int = 0
    nodes: List[NodeDescriptor] = field(default_factory=list)


@dataclass(slots=True)
class Lookup(Message):
    """Application lookup routed to the key's root (§2)."""

    category = CAT_LOOKUP
    msg_id: int = 0
    key: int = 0
    source: NodeDescriptor = None
    sent_at: float = 0.0
    hops: int = 0
    payload: object = None
    #: switches per-hop acks off for this message when the app requests it
    wants_acks: bool = True
    #: times delivery was deferred waiting on a suspected closer node
    deferrals: int = 0


@dataclass(slots=True)
class Ack(Message):
    """Per-hop acknowledgement for a routed message — Lookup or JoinRequest (§3.2)."""

    category = CAT_ACK
    msg_id: int = 0


CONTROL_CATEGORIES: Tuple[str, ...] = (
    CAT_DISTANCE,
    CAT_LEAFSET,
    CAT_HEARTBEAT,
    CAT_RT_PROBE,
    CAT_ACK,
    CAT_JOIN,
    CAT_RT_MAINT,
)


@dataclass(slots=True)
class StateRequest(Message):
    """Nearest-neighbour seed discovery: ask a node for its routing state."""

    category = CAT_JOIN


@dataclass(slots=True)
class StateReply(Message):
    category = CAT_JOIN
    nodes: List[NodeDescriptor] = field(default_factory=list)


@dataclass(slots=True)
class AppDirect(Message):
    """Application-level point-to-point message (counted as app traffic)."""

    category = CAT_LOOKUP
    payload: object = None


# ----------------------------------------------------------------------
# Wire-size model
# ----------------------------------------------------------------------
#: fixed per-message overhead: UDP/IP headers plus type tag and msg ids
HEADER_BYTES = 48
#: a NodeDescriptor on the wire: 128-bit id + address + port
DESCRIPTOR_BYTES = 22


def _descriptor_list_bytes(descs) -> int:
    return DESCRIPTOR_BYTES * len(descs)


# Per-type payload bytes beyond the shared header/sender/hint part.
# ``wire_size`` is on the transport hot path (every send while a stats
# collector is attached); the sizing function is found by one exact-type
# dict lookup instead of the former ~20-branch isinstance chain.  Values
# are identical branch by branch.

def _extra_ls_probe(msg) -> int:
    return DESCRIPTOR_BYTES * (len(msg.leaf_set) + len(msg.failed))


def _extra_join_request(msg) -> int:
    size = 8  # msg_id
    for entries in msg.rows.values():
        size += DESCRIPTOR_BYTES * len(entries)
    if msg.joiner is not None:
        size += DESCRIPTOR_BYTES
    return size


def _extra_join_reply(msg) -> int:
    size = DESCRIPTOR_BYTES * len(msg.leaf_set)
    for entries in msg.rows.values():
        size += DESCRIPTOR_BYTES * len(entries)
    return size


def _extra_row_entries(msg) -> int:
    return 2 + DESCRIPTOR_BYTES * len(msg.entries)


def _extra_state_reply(msg) -> int:
    return DESCRIPTOR_BYTES * len(msg.nodes)


def _extra_leafset_reply(msg) -> int:
    return 16 + DESCRIPTOR_BYTES * len(msg.nodes)


def _extra_slot_reply(msg) -> int:
    if msg.entry is not None:
        return 4 + DESCRIPTOR_BYTES
    return 4


def _extra_lookup(msg) -> int:
    return 16 + 8 + DESCRIPTOR_BYTES  # key, id, source


def _extra_const_16(msg) -> int:  # LeafSetRequest key / AppDirect payload ref
    return 16


def _extra_const_8(msg) -> int:  # seq / msg_id / row / rtt payloads
    return 8


def _extra_const_4(msg) -> int:  # SlotRequest (row, col)
    return 4


def _extra_zero(msg) -> int:
    return 0


#: Fallback resolution order for message *subclasses* — mirrors the old
#: isinstance chain so a subclass sizes exactly as it used to.  The shipped
#: message types are flat, so the exact-type table below always hits.
_EXTRA_ORDER: Tuple[Tuple[type, Callable[[Message], int]], ...] = (
    (LsProbe, _extra_ls_probe),
    (LsProbeReply, _extra_ls_probe),
    (JoinRequest, _extra_join_request),
    (JoinReply, _extra_join_reply),
    (RowAnnounce, _extra_row_entries),
    (RowReply, _extra_row_entries),
    (StateReply, _extra_state_reply),
    (LeafSetReply, _extra_leafset_reply),
    (LeafSetRequest, _extra_const_16),
    (Lookup, _extra_lookup),
    (SlotRequest, _extra_const_4),
    (SlotReply, _extra_slot_reply),
    (Ack, _extra_const_8),
    (RtProbe, _extra_const_8),
    (RtProbeReply, _extra_const_8),
    (DistanceProbe, _extra_const_8),
    (DistanceProbeReply, _extra_const_8),
    (Heartbeat, _extra_const_8),
    (RowRequest, _extra_const_8),
    (StateRequest, _extra_const_8),
    (DistanceReport, _extra_const_8),
    (AppDirect, _extra_const_16),
)

_EXTRA_SIZE: Dict[type, Callable[[Message], int]] = dict(_EXTRA_ORDER)


def _resolve_extra(msg_type: type) -> Callable[[Message], int]:
    """Slow path for unknown message subclasses, memoized into the table."""
    for registered, fn in _EXTRA_ORDER:
        if issubclass(msg_type, registered):
            _EXTRA_SIZE[msg_type] = fn
            return fn
    _EXTRA_SIZE[msg_type] = _extra_zero
    return _extra_zero


def wire_size(msg: Message) -> int:
    """Estimated bytes of ``msg`` on the wire.

    The paper reports control traffic in messages/second; this model adds a
    bandwidth view for library users.  Sizes follow the obvious encoding:
    fixed header, 22 bytes per node descriptor carried, 16 bytes per key.
    """
    size = HEADER_BYTES
    if msg.sender is not None:
        size += DESCRIPTOR_BYTES
    if msg.tuning_hint is not None:
        size += 8
    extra = _EXTRA_SIZE.get(msg.__class__)
    if extra is None:
        extra = _resolve_extra(msg.__class__)
    return size + extra(msg)
