"""Per-destination retransmission timers (paper §3.2).

Timeouts are estimated as in TCP (Karn & Partridge / Jacobson: smoothed RTT
plus a variance term, exponential backoff on retransmission) but set more
aggressively than TCP because Pastry can reroute around an unresponsive next
hop instead of waiting for it.  MSPastry seeds estimators from proximity
measurements when available.
"""

from __future__ import annotations

from typing import Dict


class RttEstimator:
    """Jacobson-style smoothed RTT with an aggressive multiplier."""

    __slots__ = ("srtt", "rttvar", "rto_min", "rto_max", "variance_weight")

    def __init__(
        self,
        initial_rto: float,
        rto_min: float,
        rto_max: float,
        variance_weight: float = 2.0,
    ) -> None:
        self.srtt = None
        self.rttvar = initial_rto / (1.0 + variance_weight)
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.variance_weight = variance_weight

    def seed(self, rtt: float) -> None:
        """Initialise from an out-of-band measurement (distance probe)."""
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0

    def sample(self, rtt: float) -> None:
        """Fold in a measured round-trip time (Karn rule: acked first try only)."""
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.srtt += 0.125 * err
            self.rttvar += 0.25 * (abs(err) - self.rttvar)

    @property
    def rto(self) -> float:
        if self.srtt is None:
            base = self.rttvar * (1.0 + self.variance_weight)
        else:
            base = self.srtt + self.variance_weight * self.rttvar
        return min(self.rto_max, max(self.rto_min, base))


class RtoTable:
    """Per-destination-address RTT estimators with bounded size."""

    def __init__(
        self,
        initial_rto: float = 0.5,
        rto_min: float = 0.05,
        rto_max: float = 6.0,
        max_entries: int = 512,
        variance_weight: float = 2.0,
    ) -> None:
        self.initial_rto = initial_rto
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.max_entries = max_entries
        self.variance_weight = variance_weight
        self._table: Dict[int, RttEstimator] = {}

    def _get(self, addr: int) -> RttEstimator:
        est = self._table.get(addr)
        if est is None:
            if len(self._table) >= self.max_entries:
                # Evict the oldest insertion (dicts preserve insertion order).
                self._table.pop(next(iter(self._table)))
            est = RttEstimator(
                self.initial_rto, self.rto_min, self.rto_max,
                variance_weight=self.variance_weight,
            )
            self._table[addr] = est
        return est

    def rto(self, addr: int) -> float:
        est = self._table.get(addr)
        return est.rto if est is not None else self.initial_rto

    def sample(self, addr: int, rtt: float) -> None:
        self._get(addr).sample(rtt)

    def seed(self, addr: int, rtt: float) -> None:
        self._get(addr).seed(rtt)
