"""Per-destination retransmission timers (paper §3.2).

Timeouts are estimated as in TCP (Karn & Partridge / Jacobson: smoothed RTT
plus a variance term, exponential backoff on retransmission) but set more
aggressively than TCP because Pastry can reroute around an unresponsive next
hop instead of waiting for it.  MSPastry seeds estimators from proximity
measurements when available.

Storage note: a node keeps an estimator for every destination it ever
timed, which at paper scale is hundreds of entries per node.  The table
therefore packs each estimator's two floats (srtt, rttvar) into a single
``complex`` — two unboxed C doubles in one 32-byte object — instead of a
Python object with boxed floats (~120 bytes).  The packing is pure storage:
values round-trip bit-for-bit through ``complex(srtt, rttvar)``, and all
arithmetic happens on the extracted floats, so estimates are identical to
the unpacked implementation.  ``srtt = nan`` encodes "no RTT sample yet"
(a measured RTT is always finite, so nan is unambiguous).
"""

from __future__ import annotations

import math
from typing import Dict

_NAN = float("nan")


class RttEstimator:
    """Jacobson-style smoothed RTT with an aggressive multiplier.

    Reference implementation of the estimator update rules;
    :class:`RtoTable` applies the same arithmetic to packed storage.
    """

    __slots__ = ("srtt", "rttvar", "rto_min", "rto_max", "variance_weight")

    def __init__(
        self,
        initial_rto: float,
        rto_min: float,
        rto_max: float,
        variance_weight: float = 2.0,
    ) -> None:
        self.srtt = None
        self.rttvar = initial_rto / (1.0 + variance_weight)
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.variance_weight = variance_weight

    def seed(self, rtt: float) -> None:
        """Initialise from an out-of-band measurement (distance probe)."""
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0

    def sample(self, rtt: float) -> None:
        """Fold in a measured round-trip time (Karn rule: acked first try only)."""
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.srtt += 0.125 * err
            self.rttvar += 0.25 * (abs(err) - self.rttvar)

    @property
    def rto(self) -> float:
        if self.srtt is None:
            base = self.rttvar * (1.0 + self.variance_weight)
        else:
            base = self.srtt + self.variance_weight * self.rttvar
        return min(self.rto_max, max(self.rto_min, base))


class RtoTable:
    """Per-destination-address RTT estimators with bounded size."""

    __slots__ = (
        "initial_rto",
        "rto_min",
        "rto_max",
        "max_entries",
        "variance_weight",
        "_table",
    )

    def __init__(
        self,
        initial_rto: float = 0.5,
        rto_min: float = 0.05,
        rto_max: float = 6.0,
        max_entries: int = 512,
        variance_weight: float = 2.0,
    ) -> None:
        self.initial_rto = initial_rto
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.max_entries = max_entries
        self.variance_weight = variance_weight
        #: addr -> complex(srtt, rttvar); srtt = nan until the first sample
        self._table: Dict[int, complex] = {}

    def _set(self, addr: int, srtt: float, rttvar: float) -> None:
        if addr not in self._table and len(self._table) >= self.max_entries:
            # Evict the oldest insertion (dicts preserve insertion order).
            self._table.pop(next(iter(self._table)))
        self._table[addr] = complex(srtt, rttvar)

    def rto(self, addr: int) -> float:
        entry = self._table.get(addr)
        if entry is None:
            return self.initial_rto
        srtt = entry.real
        if math.isnan(srtt):
            base = entry.imag * (1.0 + self.variance_weight)
        else:
            base = srtt + self.variance_weight * entry.imag
        return min(self.rto_max, max(self.rto_min, base))

    def sample(self, addr: int, rtt: float) -> None:
        entry = self._table.get(addr)
        if entry is None or math.isnan(entry.real):
            self._set(addr, rtt, rtt / 2.0)
        else:
            srtt = entry.real
            rttvar = entry.imag
            err = rtt - srtt
            self._table[addr] = complex(
                srtt + 0.125 * err, rttvar + 0.25 * (abs(err) - rttvar)
            )

    def seed(self, addr: int, rtt: float) -> None:
        entry = self._table.get(addr)
        if entry is None:
            self._set(addr, rtt, rtt / 2.0)
        elif math.isnan(entry.real):
            self._table[addr] = complex(rtt, rtt / 2.0)
