"""MSPastry node: consistent and reliable overlay routing (paper Figure 2).

One instance is one overlay node.  The node is a state machine driven by
network messages and timers; there are no threads.  Life cycle::

    node = MSPastryNode(sim, network, config, node_id, rng)
    node.join(seed_descriptor)        # None -> bootstrap node
    ... becomes active after its leaf-set probes all agree ...
    node.lookup(key)                  # route a message to the key's root
    node.crash()                      # crash-stop: all state is lost

Dependability machinery (paper §3):

* join: the joining node routes a join request via a nearby seed, initialises
  its routing table from rows gathered along the route, then *probes every
  leaf-set member* and only becomes active once all probes agree — this is
  what makes routing consistent,
* failure detection: heartbeat to the left neighbour, silence monitoring of
  the right neighbour, active liveness probes of routing-table entries with
  a self-tuned period, all suppressible by regular traffic,
* reliable routing: per-hop acks, aggressive retransmission, temporary
  exclusion of suspects, eager leaf-set repair and lazy routing-table repair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import chain
from typing import Callable, ClassVar, Dict, List, Optional, Set

from repro.interfaces import Clock, TimerHandle, Transport
from repro.pastry import messages as m
from repro.pastry.acks import HopAckManager
from repro.pastry.config import PastryConfig
from repro.pastry.discovery import SeedDiscovery
from repro.pastry.leafset import LeafSet
from repro.pastry.nodeid import (
    ID_SPACE,
    NodeDescriptor,
    digit,
    intern_descriptor,
    is_closer_root,
    ring_distance,
    shared_prefix_length,
)
from repro.pastry.pns import ProximityManager
from repro.pastry.routingtable import RoutingTable
from repro.pastry.rto import RtoTable
from repro.pastry.selftuning import SelfTuner
from repro.sim.periodic import PeriodicTask

JOIN_RETRY_INTERVAL = 15.0
MAX_JOIN_ATTEMPTS = 5
REPAIR_PROBE_DELAY = 0.5
MAX_BUFFERED = 128
MAX_FAILED_REMEMBERED = 128

#: outgoing message types that carry the self-tuning period hint.  Exact
#: classes suffice: these are always instantiated directly by this module's
#: own send sites (the shipped message types are flat — see the dispatch
#: table note), so the frozenset test replaces a 5-way isinstance walk on
#: every send.
_TUNING_HINT_TYPES = frozenset(
    (m.LsProbe, m.LsProbeReply, m.Heartbeat, m.RtProbe, m.RtProbeReply)
)


@dataclass(slots=True)
class _ProbeState:
    desc: NodeDescriptor
    retries: int
    timer: Optional[TimerHandle]


class MSPastryNode:
    #: type -> (bound dispatch function, is_contact flag); populated after
    #: the class body from _DISPATCH_ORDER, extended lazily for subclasses.
    _DISPATCH: ClassVar[Dict[type, tuple]] = {}

    def __init__(
        self,
        sim: Clock,
        network: Transport,
        config: PastryConfig,
        node_id: int,
        rng: random.Random,
        on_active: Optional[Callable[["MSPastryNode"], None]] = None,
        on_deliver: Optional[Callable[["MSPastryNode", m.Lookup], None]] = None,
        on_drop: Optional[Callable[["MSPastryNode", m.Lookup], None]] = None,
        on_forward: Optional[Callable[["MSPastryNode", m.Lookup], bool]] = None,
        on_app_direct: Optional[Callable[["MSPastryNode", m.AppDirect], None]] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.rng = rng
        self.addr = network.attach()
        self.descriptor = intern_descriptor(node_id, self.addr)
        #: plain attribute (== descriptor.id, never reassigned): the id is
        #: read millions of times per run and a property indirection was a
        #: measurable slice of the message hot path.
        self.id = node_id
        self.on_active = on_active
        self.on_deliver = on_deliver
        self.on_drop = on_drop
        self.on_forward = on_forward  # KBR forward upcall; False stops routing
        self.on_app_direct = on_app_direct

        self.leaf_set = LeafSet(self.descriptor, config.leaf_set_size)
        self.routing_table = RoutingTable(self.descriptor, config.b)
        self.active = False
        self.crashed = False
        #: Byzantine behavior overlay (repro.adversary.ActiveAdversary) or
        #: None.  Consulted with a single is-None test per message — the
        #: disabled cost on the hot path (mirrors the transport's no-faults
        #: fast path): no RNG draws, no extra events, byte-identical runs.
        self.adversary = None
        self.joined_at: Optional[float] = None
        self.activated_at: Optional[float] = None

        self.failed: Dict[int, NodeDescriptor] = {}
        self.failed_at: Dict[int, float] = {}
        self._failed_backoff: Dict[int, float] = {}
        self.suspected: Set[int] = set()
        self.probing: Dict[int, _ProbeState] = {}
        self._rt_probing: Dict[int, _ProbeState] = {}
        self.last_heard: Dict[int, float] = {}
        self.last_sent: Dict[int, float] = {}
        #: completed LS-probe exchanges, for candidate-probe suppression
        self._ls_heard: Dict[int, float] = {}
        # The three maps above are only ever *read* through strict recency
        # comparisons (`t > now - horizon`), so an entry older than the
        # largest horizon a reader can use is indistinguishable from an
        # absent one and can be dropped.  Long-lived nodes would otherwise
        # remember a timestamp for every peer they ever exchanged a message
        # with — the dominant per-node memory cost at paper scale.  Pruning
        # is amortized on insert (cap doubles when a sweep frees nothing),
        # touches no RNG and schedules no events, so the event stream and
        # every protocol decision are byte-identical.
        probe_cycle = (config.max_probe_retries + 1) * config.probe_timeout
        self._probe_cycle = probe_cycle
        self._heard_horizon = max(
            config.state_sweep_period,  # _rt_scan suppression (<= this)
            config.heartbeat_period + config.probe_timeout,  # _monitor_tick
            probe_cycle,  # failure-claim contradiction window
        )
        self._sent_horizon = config.heartbeat_period  # _heartbeat_to
        self._ls_heard_horizon = config.candidate_probe_suppression
        self._heard_cap = 128
        self._sent_cap = 128
        self._ls_heard_cap = 128

        self.rto_table = RtoTable(
            config.rto_initial,
            config.rto_min,
            config.rto_max,
            variance_weight=config.rto_variance_weight,
        )
        self.tuner = SelfTuner(config)
        self.prox = ProximityManager(self)
        # Routing-table proximity function, resolved once: config.pns and
        # the ProximityManager are fixed for the node's lifetime.
        self._rt_proximity = self.prox.proximity if config.pns else None
        # _advertised_failed memo: valid while the failure maps are unmutated
        # (version check) and no advertised entry has aged past the memory
        # horizon (expiry check).
        self._failed_version = 0
        self._adv_failed_cache: List[NodeDescriptor] = []
        self._adv_failed_version = -1
        self._adv_failed_expiry = 0.0
        self.acks = HopAckManager(
            sim,
            self.rto_table,
            config.max_reroutes,
            reroute=self._reroute_lookup,
            suspect=self.suspect,
            on_drop=self._lookup_dropped,
            same_hop_retransmits=config.same_hop_retransmits,
            resend=self._resend_lookup,
            probe=self.probe,
        )

        self._buffered: List[m.Message] = []
        self._lookup_seq = 0
        self._tasks: List[PeriodicTask] = []
        self._timers: List[TimerHandle] = []
        self._discovery: Optional[SeedDiscovery] = None
        self._join_seed: Optional[NodeDescriptor] = None
        self._seed_provider: Optional[Callable[[], Optional[NodeDescriptor]]] = None
        self._join_attempts = 0
        self._join_timer: Optional[TimerHandle] = None
        self._monitored_id: Optional[int] = None
        self._monitor_since = 0.0
        tuned = (
            config.rt_probe_period_max if config.self_tuning else config.rt_probe_period
        )
        self._rt_period = min(tuned, config.state_sweep_period)
        self._rt_scan_handle: Optional[TimerHandle] = None
        self._last_rt_scan = 0.0
        self._refill_version = -1
        self._deferred: Dict[int, List[m.Lookup]] = {}
        self._deferred_ids: Set[int] = set()

        network.register(self.addr, self._on_message, owner=self)

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else ("active" if self.active else "joining")
        return f"MSPastryNode({self.id:08x}.., {state})"

    def routing_state_members(self) -> List[NodeDescriptor]:
        """Unique descriptors across routing table and leaf set."""
        seen: Dict[int, NodeDescriptor] = {}
        for desc in chain(self.routing_table.entries(), self.leaf_set.members()):
            seen[desc.id] = desc
        return list(seen.values())

    def is_failed(self, node_id: int) -> bool:
        return node_id in self.failed

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dest: NodeDescriptor, msg: m.Message) -> None:
        msg.sender = self.descriptor
        if self.config.self_tuning and msg.__class__ in _TUNING_HINT_TYPES:
            msg.tuning_hint = self.tuner.local_period
        self.last_sent[dest.id] = self.sim.now
        if len(self.last_sent) >= self._sent_cap:
            self.last_sent, self._sent_cap = self._pruned_recency(
                self.last_sent, self._sent_horizon)
        self.network.send(self.addr, dest.addr, msg)

    def _send_all(self, dests: List[NodeDescriptor], msgs: List[m.Message]) -> None:
        """Batched :meth:`send`: ``msgs[i]`` goes to ``dests[i]``.

        Per-message bookkeeping (sender stamp, tuning hint, recency) runs
        in list order exactly as the equivalent send() loop would, then the
        whole burst is enqueued through the transport's batch path.  The
        recency-cap sweep runs once after the burst instead of after every
        insert — the sweep is protocol-invisible (it only drops entries no
        reader can distinguish from absent ones, and the map is never
        iterated for protocol decisions), so moving it does not change any
        observable behaviour.
        """
        descriptor = self.descriptor
        tuning = self.config.self_tuning
        local_period = self.tuner.local_period
        now = self.sim.now
        last_sent = self.last_sent
        for dest, msg in zip(dests, msgs):
            msg.sender = descriptor
            if tuning and msg.__class__ in _TUNING_HINT_TYPES:
                msg.tuning_hint = local_period
            last_sent[dest.id] = now
        if len(last_sent) >= self._sent_cap:
            self.last_sent, self._sent_cap = self._pruned_recency(
                last_sent, self._sent_horizon)
        self.network.send_many(
            self.addr, [dest.addr for dest in dests], msgs
        )

    def _pruned_recency(
        self, table: Dict[int, float], horizon: float
    ) -> "tuple[Dict[int, float], int]":
        """Drop entries no reader can distinguish from absent ones.

        Sweeps in place: deleting dead keys leaves the survivors in the
        same relative order a filtered rebuild would produce, without
        copying the (mostly surviving) bulk of the table every sweep.
        """
        cutoff = self.sim.now - horizon
        dead = [k for k, v in table.items() if v <= cutoff]
        for k in dead:
            del table[k]
        return table, max(128, 2 * len(table))

    # ------------------------------------------------------------------
    # Join (paper §2 and Figure 2)
    # ------------------------------------------------------------------
    def join(
        self,
        seed: Optional[NodeDescriptor],
        seed_provider: Optional[Callable[[], Optional[NodeDescriptor]]] = None,
    ) -> None:
        """Join the overlay via ``seed`` (None bootstraps a new overlay)."""
        self.joined_at = self.sim.now
        self.tuner.failures.start(self.sim.now)
        self._seed_provider = seed_provider
        if seed is None:
            self._activate()
            return
        self._join_seed = seed
        if self.config.pns and self.config.nearest_neighbour_join:
            self._discovery = SeedDiscovery(self, seed, self._discovered_seed)
            self._discovery.start()
        else:
            self._send_join(seed)

    def _discovered_seed(self, seed: NodeDescriptor) -> None:
        if self.crashed or self.active:
            return
        self._discovery = None
        self._send_join(seed)

    def _send_join(self, seed: NodeDescriptor) -> None:
        self._join_attempts += 1
        self._lookup_seq += 1
        msg_id = (self.addr << 24) | (self._lookup_seq & 0xFFFFFF)
        self.send(seed, m.JoinRequest(msg_id=msg_id, joiner=self.descriptor))
        self._join_timer = self.sim.schedule(JOIN_RETRY_INTERVAL, self._join_retry)

    def _join_retry(self) -> None:
        if self.crashed or self.active:
            return
        if self._join_attempts >= MAX_JOIN_ATTEMPTS:
            return  # gives up; stays inactive (dies with high churn, §5.3)
        seed = self._join_seed
        if self._seed_provider is not None:
            fresh = self._seed_provider()
            if fresh is not None and fresh.id != self.id:
                seed = fresh
        if seed is not None:
            self._send_join(seed)

    def _on_join_request(self, msg: m.JoinRequest) -> None:
        # Figure 2: R.add(Ri) — contribute our routing table rows en route.
        for row in self.routing_table.occupied_rows():
            msg.rows.setdefault(row, []).extend(self.routing_table.row_entries(row))
        # The joiner may already be known (distance reports, gossip) but it
        # is not active: never route its own join request to it.
        excluded = frozenset({msg.joiner.id})
        next_hop = self._next_hop(msg.joiner.id, excluded)
        # §3.2 applied to joins: ack the previous hop only when we can make
        # progress (forward, or reply as the active root).  A mid-join node
        # that would merely buffer the request stays silent, so the sender
        # reroutes around it instead of feeding a blackhole.
        if (
            self.config.per_hop_acks
            and msg.msg_id
            and msg.sender is not None
            and (next_hop is not None or self.active)
        ):
            self.send(msg.sender, m.Ack(msg_id=msg.msg_id))
        if next_hop is None:
            self._receive_root(msg, msg.joiner.id)
        else:
            self._forward(msg, next_hop)

    def _join_request_at_root(self, msg: m.JoinRequest) -> None:
        if not self.active:
            self._buffer(msg)
            return
        reply = m.JoinReply(
            rows=msg.rows,
            leaf_set=self.leaf_set.members() + [self.descriptor],
        )
        self.send(msg.joiner, reply)

    def _on_join_reply(self, msg: m.JoinReply) -> None:
        if self.crashed or self.active:
            return
        if self._join_timer is not None:
            self._join_timer.cancel()
        proximity = self.prox.proximity if self.config.pns else None
        for entries in msg.rows.values():
            for desc in entries:
                if desc.id != self.id:
                    self.routing_table.add(desc, proximity)
        for desc in msg.leaf_set:
            if desc.id != self.id:
                self.routing_table.add(desc, proximity)
                self.leaf_set.add(desc)
        self._probe_all(self.leaf_set.members())
        if not self.probing:
            # Joined an overlay consisting solely of the (empty-leaf-set)
            # root: probe the root itself so it learns about us.
            if msg.sender is not None:
                self.probe(msg.sender)

    # ------------------------------------------------------------------
    # Leaf-set probing: the consistency core (Figure 2)
    # ------------------------------------------------------------------
    def probe(self, desc: NodeDescriptor) -> None:
        if desc.id == self.id or desc.id in self.probing or desc.id in self.failed:
            return
        state = _ProbeState(desc=desc, retries=0, timer=None)
        self.probing[desc.id] = state
        self._send_ls_probe(desc, state)

    def _probe_all(self, descs: List[NodeDescriptor]) -> None:
        """Batched :meth:`probe` over a burst of candidates.

        Applies the same vetoes per candidate, arms every probe timer, then
        hands the whole LsProbe burst to the transport in one batch call.
        Relative event order within each same-timestamp group is unchanged
        (all timers fire at now + probe_timeout and keep their list order;
        deliveries keep theirs), and the probe payload is computed once —
        valid because nothing in the loop mutates the leaf set or the
        failure maps.
        """
        my_id = self.id
        probing = self.probing
        failed = self.failed
        timeout = self.config.probe_timeout
        schedule = self.sim.schedule
        probe_timeout = self._probe_timeout
        targets: List[NodeDescriptor] = []
        for desc in descs:
            did = desc.id
            if did == my_id or did in probing or did in failed:
                continue
            state = _ProbeState(desc=desc, retries=0, timer=None)
            probing[did] = state
            state.timer = schedule(timeout, probe_timeout, did)
            targets.append(desc)
        if not targets:
            return
        leaf_set = self.leaf_set.members()
        advertised = self._advertised_failed()
        self._send_all(
            targets,
            [
                m.LsProbe(leaf_set=leaf_set, failed=advertised)
                for _ in targets
            ],
        )

    def _send_ls_probe(self, desc: NodeDescriptor, state: _ProbeState) -> None:
        state.timer = self.sim.schedule(
            self.config.probe_timeout, self._probe_timeout, desc.id
        )
        self.send(
            desc,
            m.LsProbe(
                leaf_set=self.leaf_set.members(),
                failed=self._advertised_failed(),
            ),
        )

    def _advertised_failed(self) -> list:
        """Failure claims worth announcing: entries younger than the memory.

        An old entry is stale news — everyone in range heard the claim when
        it was fresh, and re-broadcasting it for the whole (backed-off)
        retry interval makes every receiver that still lists the node
        re-verify it on each exchange, which under membership flapping
        amplifies into a probe storm.
        """
        now = self.sim.now
        if (
            self._adv_failed_version == self._failed_version
            and now < self._adv_failed_expiry
        ):
            # Memo hit: the failure maps have not been touched and no
            # advertised entry crossed the horizon yet.  A fresh copy is
            # returned so callers (messages in flight) never alias.
            return list(self._adv_failed_cache)
        memory = self.config.failed_memory
        horizon = now - memory
        failed_at = self.failed_at
        advertised = []
        next_expiry = float("inf")
        for node_id, desc in self.failed.items():
            at = failed_at.get(node_id, -1e18)
            if at >= horizon:
                advertised.append(desc)
                expiry = at + memory
                if expiry < next_expiry:
                    next_expiry = expiry
        self._adv_failed_cache = advertised
        self._adv_failed_version = self._failed_version
        self._adv_failed_expiry = next_expiry
        return list(advertised)

    def _probe_timeout(self, node_id: int) -> None:
        if self.crashed:
            return
        state = self.probing.get(node_id)
        if state is None:
            return
        if state.retries < self.config.max_probe_retries:
            state.retries += 1
            self._send_ls_probe(state.desc, state)
            return
        self._mark_faulty(state.desc)
        self.done_probing(node_id)

    def _mark_faulty(self, desc: NodeDescriptor) -> None:
        """Remove a confirmed-dead node from all routing state (Figure 2)."""
        was_leaf = desc.id in self.leaf_set
        self.leaf_set.remove(desc.id)
        self.routing_table.remove(desc.id)
        self.suspected.discard(desc.id)
        self._failed_version += 1
        if len(self.failed) >= MAX_FAILED_REMEMBERED:
            # Evict a non-leaf-relevant entry if one exists: a remembered
            # failure that still belongs in the leaf set is the expiry
            # retry's only path back to an expelled-but-recovered ring
            # neighbour, and silently dropping it orphans that neighbour
            # for good (nobody else holds a reference to probe).
            evicted = next(
                (
                    fid
                    for fid, fdesc in self.failed.items()
                    if not self.leaf_set.would_admit(fdesc)
                ),
                None,
            )
            if evicted is None:
                evicted = next(iter(self.failed))
            else:
                self._failed_backoff.pop(evicted, None)
            self.failed.pop(evicted)
            self.failed_at.pop(evicted, None)
        self.failed[desc.id] = desc
        self.failed_at[desc.id] = self.sim.now
        # Exponential re-probe backoff (see _retry_failed): a node failing
        # again straight after an expiry retry waits twice as long next time.
        fresh = desc.id not in self._failed_backoff
        self._failed_backoff[desc.id] = min(
            2.0 * self._failed_backoff.get(desc.id, self.config.failed_memory / 2.0),
            self.config.failed_backoff_max,
        )
        self.tuner.forget_peer(desc.id)
        if fresh:
            # Expiry re-probes of the same remembered corpse are
            # re-observations, not new failures: recording them would
            # inflate the self-tuning failure-rate estimate.
            self.tuner.failures.record_failure(self.sim.now)
        self.prox.forget(desc.id)
        self.last_heard.pop(desc.id, None)
        self._ls_heard.pop(desc.id, None)
        if self._deferred and desc.id in self._deferred:
            self._flush_deferred_for(desc.id)
        if was_leaf and self.active:
            # §4.1: announce the failure to the other leaf-set members; their
            # replies double as repair candidates.
            self._probe_all(self.leaf_set.members())

    def _forget_failure(self, node_id: int) -> None:
        """The node proved itself alive: drop all failure memory for it."""
        if self.failed.pop(node_id, None) is not None:
            self._failed_version += 1
        self.failed_at.pop(node_id, None)
        self._failed_backoff.pop(node_id, None)

    def _clear_failed(self) -> None:
        # A complete leaf set makes most failure memory stale, but entries
        # that would still be admitted are the ring's own neighbourhood:
        # they survive the clear so the expiry retry (_retry_failed) can
        # reach an expelled-but-recovered neighbour that no longer appears
        # in anyone's routing state.  Backoffs survive in full on purpose:
        # a flapping gray node must not get its retry cadence reset every
        # time the leaf set completes.
        stale = [
            fid
            for fid, fdesc in self.failed.items()
            if not self.leaf_set.would_admit(fdesc)
        ]
        if stale:
            self._failed_version += 1
        for node_id in stale:
            self.failed.pop(node_id, None)
            self.failed_at.pop(node_id, None)

    def _retry_failed(self) -> None:
        """Expire failure memory (PastryConfig.failed_memory).

        Under crash-stop an eternal failed set is harmless, but a gray node
        (receive-only or out-lossy for a while) ends up expelled everywhere
        with *everyone* in its own failed set — and since probes are vetoed
        by that set, two such nodes can lock into a mutually consistent
        islet no outside traffic ever reaches.  Expiry is the escape hatch:
        a remembered failure older than its backoff is dropped, and
        re-probed once if it still belongs in the leaf set.
        """
        if not self.failed:
            return
        now = self.sim.now
        base = self.config.failed_memory
        expired = [
            node_id
            for node_id, since in self.failed_at.items()
            if now - since >= self._failed_backoff.get(node_id, base)
        ]
        if expired:
            self._failed_version += 1
        for node_id in expired:
            desc = self.failed.pop(node_id, None)
            self.failed_at.pop(node_id, None)
            if desc is None:
                continue
            if self.leaf_set.would_admit(desc):
                self.probe(desc)
            else:
                # No longer leaf-relevant: forget it entirely so the
                # backoff table cannot grow without bound.
                self._failed_backoff.pop(node_id, None)

    def done_probing(self, node_id: int) -> None:
        state = self.probing.pop(node_id, None)
        if state is not None and state.timer is not None:
            state.timer.cancel()
        if self.probing:
            return
        if self.leaf_set.complete:
            self._clear_failed()
            if not self.active:
                self._activate()
            else:
                self._flush_buffered()
            self._refill_if_thin()
        else:
            self._repair_leaf_set()

    def _handle_ls_info(self, sender: NodeDescriptor, msg) -> None:
        """Common processing of LS-PROBE and LS-PROBE-REPLY (Figure 2)."""
        now = self.sim.now
        leaf_set = self.leaf_set
        my_id = self.id
        sender_id = sender.id
        if (
            sender_id in self.failed
            or sender_id in self.failed_at
            or sender_id in self._failed_backoff
        ):
            self._forget_failure(sender_id)
        self._ls_heard[sender_id] = now
        if len(self._ls_heard) >= self._ls_heard_cap:
            self._ls_heard, self._ls_heard_cap = self._pruned_recency(
                self._ls_heard, self._ls_heard_horizon)
        leaf_set.add(sender)
        self.consider_for_routing_table(sender)
        # Verify claimed failures of our own leaf-set members ourselves: the
        # member stays until our probe fails (a false claim must not evict a
        # live neighbour), and a claim contradicted by fresher direct
        # evidence — we heard from the node within one probe cycle — is
        # ignored outright.
        probe_cycle = self._probe_cycle
        members = leaf_set._members
        for desc in msg.failed:
            if desc.id == my_id:
                continue
            claimed = members.get(desc.id)
            if claimed is not None:
                if self.last_heard.get(desc.id, -1e18) > now - probe_cycle:
                    continue
                self.probe(claimed)
        # Candidates from the sender's leaf set, probed before inclusion.
        # Suppression: a candidate we exchanged leaf sets with in the last
        # few seconds told us everything a fresh probe would; re-probing it
        # every time a neighbour mentions it turns membership flapping
        # (gray failures, partition heal) into a ring-wide probe storm.
        # Never suppress while joining or mid-repair: an ignored candidate
        # offer is not revisited, and a stalled repair can outlast a
        # joiner's retry budget.
        suppress = (
            self.config.candidate_probe_suppression
            if self.config.probe_suppression
            and self.active
            and leaf_set.complete
            else 0.0
        )
        horizon = now - suppress
        failed = self.failed
        ls_heard = self._ls_heard
        # Inline leaf_set.would_admit against bounds hoisted out of the
        # loop: the owner/member vetoes are already covered by the my_id
        # and membership checks above, and nothing in the loop body mutates
        # the ring (probe() only arms a timer and sends), so the admission
        # window is loop-invariant.  Same comparisons as would_admit,
        # candidate for candidate.
        ring_keys = leaf_set._ring_keys
        n = len(ring_keys)
        half = leaf_set._half
        bounded = n >= half
        if bounded:
            lo = ring_keys[half - 1]
            hi = ring_keys[n - half]
        probe = self.probe
        for desc in msg.leaf_set:
            did = desc.id
            # Membership first: in a stable ring most offered candidates
            # are already members, and these vetoes are order-independent
            # pure filters.
            if did in members or did == my_id or did in failed:
                continue
            if suppress and ls_heard.get(did, -1e18) > horizon:
                continue
            if bounded:
                cw = (did - my_id) % ID_SPACE
                if lo <= cw <= hi:
                    continue
            probe(desc)

    def _on_ls_probe(self, sender: NodeDescriptor, msg: m.LsProbe) -> None:
        self._handle_ls_info(sender, msg)
        self.send(
            sender,
            m.LsProbeReply(
                leaf_set=self.leaf_set.members(),
                failed=self._advertised_failed(),
            ),
        )

    def _on_ls_probe_reply(self, sender: NodeDescriptor, msg: m.LsProbeReply) -> None:
        self._handle_ls_info(sender, msg)
        if sender.id in self.probing:
            self.done_probing(sender.id)

    def suspect(self, desc: NodeDescriptor) -> None:
        """SUSPECT-FAULTY: exclude from routing until a probe resolves it."""
        if desc.id == self.id or desc.id in self.failed:
            return
        self.suspected.add(desc.id)
        self.probe(desc)

    # ------------------------------------------------------------------
    # Leaf-set repair (§3.1)
    # ------------------------------------------------------------------
    def _repair_leaf_set(self) -> None:
        half = self.config.leaf_set_size // 2
        left, right = self.leaf_set.left_side, self.leaf_set.right_side
        if left and len(left) < half:
            self._schedule_repair_probe(self.leaf_set.leftmost)
        if right and len(right) < half:
            self._schedule_repair_probe(self.leaf_set.rightmost)
        if not left or not right:
            self._generalized_repair(missing_left=not left, missing_right=not right)

    def _refill_if_thin(self) -> None:
        """Re-probe the leaf-set extremes after losses in a large ring.

        A leaf set that knows fewer than ``l`` members cannot tell a small
        overlay from one it is mid-repair in (see LeafSet.wrapped).  When it
        still knows at least l/2 members — a strong hint the ring is large —
        the extremes are probed so their leaf sets refill ours.  Guarded by
        the leaf-set version so a drained probe round with no new members
        terminates instead of ping-ponging.
        """
        leaf_set = self.leaf_set
        if not leaf_set.wrapped() or len(leaf_set) < self.config.leaf_set_size // 2:
            return
        if leaf_set.version == self._refill_version:
            return
        self._refill_version = leaf_set.version
        if leaf_set.leftmost is not None:
            self._schedule_repair_probe(leaf_set.leftmost)
        if leaf_set.rightmost is not None:
            self._schedule_repair_probe(leaf_set.rightmost)

    def _schedule_repair_probe(self, desc: NodeDescriptor) -> None:
        if len(self._timers) > 64:
            self._timers = [h for h in self._timers if h.active]
        handle = self.sim.schedule(REPAIR_PROBE_DELAY, self._repair_probe, desc)
        self._timers.append(handle)

    def _repair_probe(self, desc: NodeDescriptor) -> None:
        if self.crashed or desc.id in self.failed:
            return
        self.probe(desc)

    def _generalized_repair(self, missing_left: bool, missing_right: bool) -> None:
        """Use the routing table to rebuild an empty leaf-set side (§3.1)."""
        candidates = self.routing_state_members()
        if not candidates:
            return  # isolated: nothing we can do
        if missing_right:
            target = min(
                candidates, key=lambda d: (d.id - self.id) % (1 << 128)
            )
            self.send(target, m.LeafSetRequest(key=self.id))
        if missing_left:
            target = min(
                candidates, key=lambda d: (self.id - d.id) % (1 << 128)
            )
            self.send(target, m.LeafSetRequest(key=self.id))

    def _on_leafset_request(self, sender: NodeDescriptor, msg: m.LeafSetRequest) -> None:
        pool = self.routing_state_members() + [self.descriptor]
        pool = [d for d in pool if d.id != sender.id]
        pool.sort(key=lambda d: ring_distance(d.id, msg.key))
        self.send(
            sender,
            m.LeafSetReply(key=msg.key, nodes=pool[: self.config.leaf_set_size + 1]),
        )

    def _on_leafset_reply(self, sender: NodeDescriptor, msg: m.LeafSetReply) -> None:
        for desc in msg.nodes:
            if desc.id == self.id or desc.id in self.failed:
                continue
            if self.leaf_set.would_admit(desc):
                self.probe(desc)

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def _activate(self) -> None:
        if self.active or self.crashed:
            return
        self.active = True
        self.activated_at = self.sim.now
        self._clear_failed()
        if self._join_timer is not None:
            self._join_timer.cancel()
        # Notify before flushing buffered traffic: the node is the root of
        # its key range from this instant on.
        if self.on_active is not None:
            self.on_active(self)
        config = self.config
        self._tasks.append(
            PeriodicTask(self.sim, config.heartbeat_period, self._heartbeat_tick,
                         start_delay=self.rng.uniform(0, config.heartbeat_period))
        )
        self._tasks.append(
            PeriodicTask(self.sim, config.heartbeat_period, self._monitor_tick,
                         start_delay=self.rng.uniform(0, config.heartbeat_period))
        )
        if config.self_tuning:
            self._tasks.append(
                PeriodicTask(self.sim, config.self_tuning_interval, self._tune_tick,
                             start_delay=self.rng.uniform(0, config.self_tuning_interval))
            )
        if config.pns:
            self._tasks.append(
                PeriodicTask(self.sim, config.rt_maintenance_period,
                             self._maintenance_tick,
                             start_delay=self.rng.uniform(
                                 0.5 * config.rt_maintenance_period,
                                 1.5 * config.rt_maintenance_period))
            )
        if config.active_rt_probing:
            self._schedule_rt_scan(self.rng.uniform(0, self._rt_period))
        if config.pns and len(self.routing_table) > 0:
            self.prox.probe_routing_state()
            self.prox.announce_rows()
        self._flush_buffered()

    # ------------------------------------------------------------------
    # Failure detection timers (§4.1)
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        # Opportunistic sweep of the recency maps: the insert-time sweeps
        # double their cap under probe bursts (a joining node contacts its
        # whole routing state within one suppression window), and without
        # further inserts the bloated table would persist.  Piggybacking on
        # an existing timer keeps the event stream untouched.
        if len(self.last_sent) >= 128:
            self.last_sent, self._sent_cap = self._pruned_recency(
                self.last_sent, self._sent_horizon)
        if len(self._ls_heard) >= 128:
            self._ls_heard, self._ls_heard_cap = self._pruned_recency(
                self._ls_heard, self._ls_heard_horizon)
        if len(self.last_heard) >= 128:
            self.last_heard, self._heard_cap = self._pruned_recency(
                self.last_heard, self._heard_horizon)
        self._retry_failed()
        if self.config.heartbeat_all_leafset:
            # Ablation baseline: heartbeat every member (cost grows with l).
            # Batched: suppression reads last_sent before any send in the
            # round, which matches the scalar loop because the member ids
            # are distinct — no send in the round can affect another
            # member's suppression check.
            if self.config.probe_suppression:
                cutoff = self.sim.now - self.config.heartbeat_period
                last_sent = self.last_sent
                targets = [
                    member
                    for member in self.leaf_set.members()
                    if last_sent.get(member.id, -1e18) <= cutoff
                ]
            else:
                targets = self.leaf_set.members()
            if targets:
                self._send_all(targets, [m.Heartbeat() for _ in targets])
            return
        left = self.leaf_set.left_neighbour
        if left is not None:
            self._heartbeat_to(left)

    def _heartbeat_to(self, target: NodeDescriptor) -> None:
        if (
            self.config.probe_suppression
            and self.last_sent.get(target.id, -1e18)
            > self.sim.now - self.config.heartbeat_period
        ):
            return
        self.send(target, m.Heartbeat())

    def _monitor_tick(self) -> None:
        right = self.leaf_set.right_neighbour
        if right is None:
            return
        if right.id != self._monitored_id:
            self._monitored_id = right.id
            self._monitor_since = self.sim.now
            return
        deadline = self.config.heartbeat_period + self.config.probe_timeout
        heard = max(self.last_heard.get(right.id, 0.0), self._monitor_since)
        if heard < self.sim.now - deadline:
            self.suspected.discard(right.id)  # not a routing suspect, just silent
            self.probe(right)

    def _on_heartbeat(self, sender: NodeDescriptor) -> None:
        """A heartbeat is a direct liveness proof: recover false positives.

        A node removed on a probe false positive (likely under link loss)
        keeps heart-beating its left neighbour; seeing the heartbeat we drop
        it from the failed set and re-probe it so it can rejoin the leaf set
        — this is the fast recovery from consistency violations (§3.1).
        """
        if sender.id in self.failed:
            self._forget_failure(sender.id)
            self.probe(sender)
        elif sender.id not in self.leaf_set and self.leaf_set.would_admit(sender):
            self.probe(sender)

    def _tune_tick(self) -> None:
        members = len(self.routing_state_members())
        self.tuner.recompute_local(self.sim.now, self.leaf_set, members)
        period = min(self.tuner.current_period(), self.config.state_sweep_period)
        if period != self._rt_period:
            self._rt_period = period
            self._maybe_advance_rt_scan()

    def _maintenance_tick(self) -> None:
        self.prox.run_maintenance()

    def _schedule_rt_scan(self, delay: float) -> None:
        self._rt_scan_handle = self.sim.schedule(delay, self._rt_scan)

    def _maybe_advance_rt_scan(self) -> None:
        handle = self._rt_scan_handle
        if handle is None or not handle.active:
            return
        desired = max(self.sim.now, self._last_rt_scan + self._rt_period)
        if desired < handle.time:
            handle.cancel()
            self._schedule_rt_scan(desired - self.sim.now)

    def _rt_scan(self) -> None:
        if self.crashed:
            return
        self._last_rt_scan = self.sim.now
        horizon = self.sim.now - self._rt_period
        # Probe the whole routing state (§3.2): routing-table entries plus
        # leaf-set members.  Heartbeats cover the immediate neighbours every
        # Tls; this much slower sweep catches dead members farther along the
        # sides that no failure announcement reached.  The sweep is batched:
        # vetoes run per candidate (ids are unique, so arming one probe
        # cannot affect another's veto), every timer is armed, then the
        # whole RtProbe burst goes out in one transport call.
        probing = self.probing
        rt_probing = self._rt_probing
        failed = self.failed
        suppression = self.config.probe_suppression
        last_heard = self.last_heard
        timeout = self.config.probe_timeout
        schedule = self.sim.schedule
        rt_probe_timeout = self._rt_probe_timeout
        targets: List[NodeDescriptor] = []
        for desc in self.routing_state_members():
            did = desc.id
            if did in probing or did in rt_probing:
                continue
            if did in failed:
                continue
            if suppression and last_heard.get(did, -1e18) > horizon:
                continue
            state = _ProbeState(desc=desc, retries=0, timer=None)
            rt_probing[did] = state
            state.timer = schedule(timeout, rt_probe_timeout, did)
            targets.append(desc)
        if targets:
            self._send_all(targets, [m.RtProbe() for _ in targets])
        self._schedule_rt_scan(self._rt_period)

    def _send_rt_probe(self, desc: NodeDescriptor) -> None:
        state = _ProbeState(desc=desc, retries=0, timer=None)
        self._rt_probing[desc.id] = state
        self._dispatch_rt_probe(desc, state)

    def _dispatch_rt_probe(self, desc: NodeDescriptor, state: _ProbeState) -> None:
        state.timer = self.sim.schedule(
            self.config.probe_timeout, self._rt_probe_timeout, desc.id
        )
        self.send(desc, m.RtProbe())

    def _rt_probe_timeout(self, node_id: int) -> None:
        if self.crashed:
            return
        state = self._rt_probing.get(node_id)
        if state is None:
            return
        if state.retries < self.config.max_probe_retries:
            state.retries += 1
            self._dispatch_rt_probe(state.desc, state)
            return
        del self._rt_probing[node_id]
        self._mark_faulty(state.desc)

    def _on_rt_probe_reply(self, sender: NodeDescriptor) -> None:
        state = self._rt_probing.pop(sender.id, None)
        if state is not None and state.timer is not None:
            state.timer.cancel()

    # ------------------------------------------------------------------
    # Routing (Figure 2, routei)
    # ------------------------------------------------------------------
    def make_lookup(self, key: int, payload: object = None,
                    wants_acks: Optional[bool] = None) -> m.Lookup:
        """Create (but do not route) a lookup message originating here."""
        self._lookup_seq += 1
        return m.Lookup(
            msg_id=(self.addr << 24) | (self._lookup_seq & 0xFFFFFF),
            key=key,
            source=self.descriptor,
            sent_at=self.sim.now,
            payload=payload,
            wants_acks=self.config.per_hop_acks if wants_acks is None else wants_acks,
        )

    def route_lookup(self, msg: m.Lookup) -> None:
        """Route a lookup created with :meth:`make_lookup`."""
        self._route(msg, msg.key)

    def lookup(self, key: int, payload: object = None,
               wants_acks: Optional[bool] = None) -> m.Lookup:
        """Originate a lookup; returns the message (its id tracks delivery).

        Note: when the local node is itself the key's root the delivery
        happens synchronously inside this call.  Callers that need to
        observe the delivery must use :meth:`make_lookup`, register their
        bookkeeping, then :meth:`route_lookup`.
        """
        msg = self.make_lookup(key, payload, wants_acks)
        self.route_lookup(msg)
        return msg

    def _route(self, msg: m.Message, key: int, excluded: frozenset = frozenset()) -> bool:
        """Route ``msg`` one step towards ``key``; True if forwarded."""
        next_hop = self._next_hop(key, excluded)
        if next_hop is None:
            self._receive_root(msg, key)
            return False
        self._forward(msg, next_hop)
        return True

    def _next_hop(self, key: int, excluded: frozenset) -> Optional[NodeDescriptor]:
        # Routing inner loop: the usability predicate (not suspected, not
        # failed, not excluded) is inlined against hoisted locals — it runs
        # once per candidate per hop, for every routed message.
        suspected = self.suspected
        failed = self.failed
        my_id = self.id
        leaf_set = self.leaf_set
        if leaf_set.covers(key):
            best = self.descriptor
            best_id = my_id
            for desc in leaf_set.members():
                desc_id = desc.id
                if (
                    desc_id not in suspected
                    and desc_id not in failed
                    and desc_id not in excluded
                    and is_closer_root(desc_id, best_id, key)
                ):
                    best = desc
                    best_id = desc_id
            return None if best_id == my_id else best

        b = self.config.b
        row = shared_prefix_length(key, my_id, b)
        primary = self.routing_table.get(row, digit(key, row, b))
        if primary is not None:
            primary_id = primary.id
            if (
                primary_id not in suspected
                and primary_id not in failed
                and primary_id not in excluded
            ):
                return primary

        # Route around the missing/suspect entry: any known node strictly
        # closer to the key that shares a prefix of length >= row.
        best = None
        best_dist = ring_distance(my_id, key)
        for desc in chain(self.routing_table.entries(), leaf_set.members()):
            desc_id = desc.id
            if (
                desc_id in suspected
                or desc_id in failed
                or desc_id in excluded
            ):
                continue
            if shared_prefix_length(key, desc_id, b) < row:
                continue
            dist = ring_distance(desc_id, key)
            if dist < best_dist:
                best = desc
                best_dist = dist
        if (
            best is not None
            and primary is None
            and self.config.passive_rt_repair
            and self.config.pns
        ):
            self.send(best, m.SlotRequest(row=row, col=digit(key, row, b)))
        return best

    def _forward(self, msg: m.Message, next_hop: NodeDescriptor) -> None:
        if isinstance(msg, m.Lookup):
            if msg.wants_acks and self.config.per_hop_acks:
                self.acks.track(msg, next_hop)
        elif isinstance(msg, m.JoinRequest):
            if msg.msg_id and self.config.per_hop_acks:
                self.acks.track(msg, next_hop)
        self.send(next_hop, msg)

    def _reroute_lookup(self, msg: m.Message, excluded: Set[int]) -> bool:
        if self.crashed:
            return False
        if isinstance(msg, m.JoinRequest):
            return self._route(
                msg, msg.joiner.id, frozenset(excluded) | {msg.joiner.id}
            )
        return self._route(msg, msg.key, frozenset(excluded))

    def _resend_lookup(self, msg: m.Message, next_hop: NodeDescriptor) -> None:
        if not self.crashed:
            self.send(next_hop, msg)

    def _lookup_dropped(self, msg: m.Message) -> None:
        if isinstance(msg, m.Lookup) and self.on_drop is not None:
            self.on_drop(self, msg)

    def _receive_root(self, msg: m.Message, key: int) -> None:
        if isinstance(msg, m.JoinRequest):
            self._join_request_at_root(msg)
            return
        if not isinstance(msg, m.Lookup):
            return
        if self.active and self._may_deliver():
            if self._defer_for_suspect(msg, key):
                return
            msg.hops += 1
            if self.on_deliver is not None:
                self.on_deliver(self, msg)
        else:
            self._buffer(msg)

    def _defer_for_suspect(self, msg: m.Lookup, key: int) -> bool:
        """Hold delivery while a closer leaf-set node is merely *suspected*.

        A lost packet or ack must not divert delivery to the second-closest
        node: the suspect either answers the outstanding probe — the retry
        fires immediately and forwards to it — or is marked faulty, in
        which case we really are the root.  A safety timeout and a deferral
        cap bound the extra delay when the suspect is genuinely dead.
        """
        if not self.config.defer_delivery_on_suspect:
            return False
        if msg.deferrals >= self.config.max_delivery_deferrals:
            return False
        blocker = None
        for desc in self.leaf_set.members():
            if desc.id in self.suspected and is_closer_root(desc.id, self.id, key):
                blocker = desc
                break
        if blocker is None:
            return False
        msg.deferrals += 1
        self._deferred.setdefault(blocker.id, []).append(msg)
        self._deferred_ids.add(msg.msg_id)
        self.probe(blocker)  # resolve the limbo quickly (no-op if probing)
        handle = self.sim.schedule(
            self.config.delivery_defer_interval, self._deferred_timeout, msg
        )
        if len(self._timers) > 64:
            self._timers = [h for h in self._timers if h.active]
        self._timers.append(handle)
        return True

    def _deferred_timeout(self, msg: m.Lookup) -> None:
        """Safety valve: re-route even if the suspicion has not resolved."""
        if self.crashed or msg.msg_id not in self._deferred_ids:
            return
        self._deferred_ids.discard(msg.msg_id)
        self._route(msg, msg.key)

    def _flush_deferred_for(self, node_id: int) -> None:
        """The suspicion on ``node_id`` resolved: re-route waiting lookups."""
        msgs = self._deferred.pop(node_id, None)
        if not msgs:
            return
        for msg in msgs:
            if msg.msg_id in self._deferred_ids:
                self._deferred_ids.discard(msg.msg_id)
                self._route(msg, msg.key)

    def _may_deliver(self) -> bool:
        """§3.1: no deliveries while one leaf-set side is empty (unless alone)."""
        if len(self.leaf_set) == 0:
            return True  # single-node overlay
        return bool(self.leaf_set.left_side) and bool(self.leaf_set.right_side)

    def _buffer(self, msg: m.Message) -> None:
        if len(self._buffered) >= MAX_BUFFERED:
            self._buffered.pop(0)
        self._buffered.append(msg)

    def _flush_buffered(self) -> None:
        if not self._buffered or not self.active or not self._may_deliver():
            return
        buffered, self._buffered = self._buffered, []
        for msg in buffered:
            if isinstance(msg, m.JoinRequest):
                self._route(msg, msg.joiner.id, excluded=frozenset({msg.joiner.id}))
            else:
                self._route(msg, msg.key)

    def _on_lookup(self, msg: m.Lookup) -> None:
        msg.hops += 1
        if self.on_forward is not None and not self.on_forward(self, msg):
            # Application consumed the message mid-route (e.g. Scribe
            # subscription absorbed by an existing forwarder).  Still ack:
            # the message was handled.
            if msg.wants_acks and self.config.per_hop_acks and msg.sender is not None:
                self.send(msg.sender, m.Ack(msg_id=msg.msg_id))
            return
        next_hop = self._next_hop(msg.key, frozenset())
        deliverable = next_hop is not None or (self.active and self._may_deliver())
        if (
            deliverable
            and msg.wants_acks
            and self.config.per_hop_acks
            and msg.sender is not None
        ):
            # Ack only what we can forward or deliver: a node that would
            # merely buffer (e.g. still joining) stays silent so the
            # previous hop reroutes around it.
            self.send(msg.sender, m.Ack(msg_id=msg.msg_id))
        if next_hop is None:
            self._receive_root(msg, msg.key)
        else:
            self._forward(msg, next_hop)

    # ------------------------------------------------------------------
    # Routing-table upkeep
    # ------------------------------------------------------------------
    def consider_for_routing_table(self, desc: NodeDescriptor) -> None:
        if desc.id == self.id or desc.id in self.failed:
            return
        self.routing_table.add(desc, self._rt_proximity)

    def _on_slot_request(self, sender: NodeDescriptor, msg: m.SlotRequest) -> None:
        entry = self._find_slot_entry(sender.id, msg.row, msg.col)
        self.send(sender, m.SlotReply(row=msg.row, col=msg.col, entry=entry))

    def _find_slot_entry(
        self, owner_id: int, row: int, col: int
    ) -> Optional[NodeDescriptor]:
        for desc in [self.descriptor] + self.routing_state_members():
            if (
                shared_prefix_length(desc.id, owner_id, self.config.b) >= row
                and digit(desc.id, row, self.config.b) == col
            ):
                return desc
        return None

    def _on_slot_reply(self, msg: m.SlotReply) -> None:
        entry = msg.entry
        if entry is None or entry.id == self.id or entry.id in self.failed:
            return
        # Repair rule: never insert without a direct message — probe first.
        if self.config.pns:
            self.prox.measure(entry, self.prox._make_considerer(entry))
        else:
            self.probe(entry)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    # The handler for each message type is looked up in a precomputed
    # class-level table keyed by exact type (populated below the class
    # body, in the order of the old isinstance chain).  Message types are
    # flat — none subclasses another — so an exact-type hit is equivalent
    # to the chain; hypothetical subclasses fall back to a memoized
    # isinstance resolution in the same order.  Each table entry carries
    # the "contact" flag (may this type trigger leaf-set recovery?) so the
    # pre-dispatch block pays one dict lookup instead of an isinstance
    # check per message.

    def _handle_lookup(self, src_addr, sender, msg) -> None:
        self._on_lookup(msg)

    def _handle_ack(self, src_addr, sender, msg) -> None:
        self.acks.on_ack(msg.msg_id, src_addr)

    def _handle_ls_probe(self, src_addr, sender, msg) -> None:
        self._on_ls_probe(sender, msg)

    def _handle_ls_probe_reply(self, src_addr, sender, msg) -> None:
        self._on_ls_probe_reply(sender, msg)

    def _handle_heartbeat(self, src_addr, sender, msg) -> None:
        self._on_heartbeat(sender)

    def _handle_join_request(self, src_addr, sender, msg) -> None:
        self._on_join_request(msg)

    def _handle_join_reply(self, src_addr, sender, msg) -> None:
        self._on_join_reply(msg)

    def _handle_rt_probe(self, src_addr, sender, msg) -> None:
        self.send(sender, m.RtProbeReply())

    def _handle_rt_probe_reply(self, src_addr, sender, msg) -> None:
        self._on_rt_probe_reply(sender)

    def _handle_distance_probe(self, src_addr, sender, msg) -> None:
        self.prox.on_probe(sender, msg)

    def _handle_distance_probe_reply(self, src_addr, sender, msg) -> None:
        self.prox.on_probe_reply(sender, msg)

    def _handle_distance_report(self, src_addr, sender, msg) -> None:
        self.prox.on_report(sender, msg)

    def _handle_row_announce(self, src_addr, sender, msg) -> None:
        self.prox.on_row_announce(sender, msg)

    def _handle_row_request(self, src_addr, sender, msg) -> None:
        self.prox.on_row_request(sender, msg)

    def _handle_row_reply(self, src_addr, sender, msg) -> None:
        self.prox.on_row_reply(sender, msg)

    def _handle_slot_request(self, src_addr, sender, msg) -> None:
        self._on_slot_request(sender, msg)

    def _handle_slot_reply(self, src_addr, sender, msg) -> None:
        self._on_slot_reply(msg)

    def _handle_leafset_request(self, src_addr, sender, msg) -> None:
        self._on_leafset_request(sender, msg)

    def _handle_leafset_reply(self, src_addr, sender, msg) -> None:
        self._on_leafset_reply(sender, msg)

    def _handle_app_direct(self, src_addr, sender, msg) -> None:
        if self.on_app_direct is not None:
            self.on_app_direct(self, msg)

    def _handle_state_request(self, src_addr, sender, msg) -> None:
        self.send(sender, m.StateReply(nodes=self.routing_state_members()))

    def _handle_state_reply(self, src_addr, sender, msg) -> None:
        if self._discovery is not None:
            self._discovery.on_state_reply(sender, msg)

    @classmethod
    def _resolve_dispatch(cls, msg_type: type) -> tuple:
        """Slow-path resolution for message subclasses, memoized."""
        for registered, entry in _DISPATCH_ORDER:
            if issubclass(msg_type, registered):
                cls._DISPATCH[msg_type] = entry
                return entry
        entry = (None, False)
        cls._DISPATCH[msg_type] = entry
        return entry

    def _on_message(self, src_addr: int, msg: m.Message) -> None:
        if self.crashed:
            return
        entry = self._DISPATCH.get(msg.__class__)
        if entry is None:
            entry = self._resolve_dispatch(msg.__class__)
        handler, is_contact = entry
        sender = msg.sender
        if sender is not None and (sender_id := sender.id) != self.id:
            self.last_heard[sender_id] = self.sim.now
            if len(self.last_heard) >= self._heard_cap:
                self.last_heard, self._heard_cap = self._pruned_recency(
                    self.last_heard, self._heard_horizon)
            self.suspected.discard(sender_id)
            if self._deferred and sender_id in self._deferred:
                self._flush_deferred_for(sender_id)
            if msg.tuning_hint is not None:
                self.tuner.record_hint(sender_id, msg.tuning_hint)
            # Contact-driven leaf-set recovery: traffic from a node that
            # belongs in our leaf set but is not there triggers a probe.
            # This generalizes the heartbeat recovery rule below and is what
            # re-merges two rings after a network partition heals — the
            # first cross-side contact (a routed lookup, an RT probe) pulls
            # the sender in, and the ensuing LS-PROBE exchange propagates
            # both sides' leaf sets.  Only message types that active members
            # send qualify (the ``is_contact`` flag in the dispatch table):
            # probing e.g. a seed-discovery walker or a mid-join node would
            # entangle it in the ring prematurely.
            if is_contact and self.active:
                leaf_set = self.leaf_set
                if (
                    sender_id not in leaf_set._members
                    and sender_id not in self.failed
                    and leaf_set.would_admit(sender)
                ):
                    self.probe(sender)
        if handler is not None:
            # Byzantine overlay: the sender bookkeeping above still ran (a
            # compromised node keeps its own protocol state honest), but the
            # overlay may consume the message instead of the real handler.
            adversary = self.adversary
            if adversary is not None and adversary.intercept(src_addr, msg):
                return
            handler(self, src_addr, sender, msg)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def debug_state(self) -> dict:
        """Snapshot of the node's protocol state (for operators/tests)."""
        return {
            "id": self.id,
            "addr": self.addr,
            "active": self.active,
            "crashed": self.crashed,
            "leaf_set_size": len(self.leaf_set),
            "leaf_left": len(self.leaf_set.left_side),
            "leaf_right": len(self.leaf_set.right_side),
            "routing_table_entries": len(self.routing_table),
            "probing": len(self.probing),
            "rt_probing": len(self._rt_probing),
            "suspected": len(self.suspected),
            "failed_remembered": len(self.failed),
            "buffered": len(self._buffered),
            "deferred": len(self._deferred_ids),
            "acks_in_flight": self.acks.in_flight,
            "rt_probe_period": self._rt_period,
            "mu_estimate": self.tuner.mu_estimate,
            "n_estimate": self.tuner.n_estimate,
            "proximity_cache": len(self.prox.proximity),
        }

    # ------------------------------------------------------------------
    # Crash-stop
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: lose all state, cancel all timers, leave the network."""
        if self.crashed:
            return
        self.crashed = True
        self.active = False
        self.network.deregister(self.addr)
        if self.adversary is not None:
            self.adversary.uninstall()
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        for state in list(self.probing.values()) + list(self._rt_probing.values()):
            if state.timer is not None:
                state.timer.cancel()
        self.probing.clear()
        self._rt_probing.clear()
        self.acks.cancel_all()
        self.prox.cancel_all()
        if self._discovery is not None:
            self._discovery.cancel()
        if self._join_timer is not None:
            self._join_timer.cancel()
        if self._rt_scan_handle is not None:
            self._rt_scan_handle.cancel()
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        self._buffered.clear()
        self._deferred.clear()
        self._deferred_ids.clear()

    leave = crash  # voluntary departure is indistinguishable from a crash


#: Dispatch table source of truth, in the order of the old isinstance chain
#: (resolution order matters only for hypothetical message subclasses; the
#: shipped types are flat so exact-type lookup always hits).  The boolean is
#: the "contact" flag: message types active ring members send, eligible to
#: trigger contact-driven leaf-set recovery in ``_on_message``.
_DISPATCH_ORDER = (
    (m.Lookup, (MSPastryNode._handle_lookup, True)),
    (m.Ack, (MSPastryNode._handle_ack, True)),
    (m.LsProbe, (MSPastryNode._handle_ls_probe, False)),
    (m.LsProbeReply, (MSPastryNode._handle_ls_probe_reply, False)),
    (m.Heartbeat, (MSPastryNode._handle_heartbeat, True)),
    (m.JoinRequest, (MSPastryNode._handle_join_request, False)),
    (m.JoinReply, (MSPastryNode._handle_join_reply, False)),
    (m.RtProbe, (MSPastryNode._handle_rt_probe, True)),
    (m.RtProbeReply, (MSPastryNode._handle_rt_probe_reply, True)),
    (m.DistanceProbe, (MSPastryNode._handle_distance_probe, False)),
    (m.DistanceProbeReply, (MSPastryNode._handle_distance_probe_reply, False)),
    (m.DistanceReport, (MSPastryNode._handle_distance_report, False)),
    (m.RowAnnounce, (MSPastryNode._handle_row_announce, False)),
    (m.RowRequest, (MSPastryNode._handle_row_request, False)),
    (m.RowReply, (MSPastryNode._handle_row_reply, False)),
    (m.SlotRequest, (MSPastryNode._handle_slot_request, False)),
    (m.SlotReply, (MSPastryNode._handle_slot_reply, False)),
    (m.LeafSetRequest, (MSPastryNode._handle_leafset_request, False)),
    (m.LeafSetReply, (MSPastryNode._handle_leafset_reply, False)),
    (m.AppDirect, (MSPastryNode._handle_app_direct, False)),
    (m.StateRequest, (MSPastryNode._handle_state_request, False)),
    (m.StateReply, (MSPastryNode._handle_state_reply, False)),
)

MSPastryNode._DISPATCH = {cls: entry for cls, entry in _DISPATCH_ORDER}
