"""Pastry routing table: 128/b rows × 2^b columns of prefix-matched entries.

The entry at (row r, column c) holds a node whose id shares the first r
digits with the owner and has digit c at position r.  When proximity
neighbour selection is enabled, a slot prefers the entry with the smallest
network proximity among eligible candidates.

Slots are stored in a dict keyed by the flat index ``row * cols + col``
(one small int instead of a tuple per lookup on the per-message routing
path); the mapping is bijective, so insertion order — and therefore the
protocol-visible ``entries()`` order — is identical to the previous
tuple-keyed storage.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.pastry.nodeid import ID_BITS, NodeDescriptor, n_rows

_INF = float("inf")


class RoutingTable:
    __slots__ = ("owner", "b", "rows", "cols", "_owner_id", "_slots", "_slot_of")

    def __init__(self, owner: NodeDescriptor, b: int) -> None:
        self.owner = owner
        self.b = b
        self.rows = n_rows(b)
        self.cols = 1 << b
        self._owner_id = owner.id
        self._slots: Dict[int, NodeDescriptor] = {}  # row * cols + col -> node
        self._slot_of: Dict[int, int] = {}  # node id -> flat slot index

    # ------------------------------------------------------------------
    def _flat_for(self, node_id: int) -> int:
        """Flat slot index for ``node_id`` (caller excludes the owner)."""
        b = self.b
        xor = node_id ^ self._owner_id
        row = (ID_BITS - xor.bit_length()) // b
        shift = ID_BITS - (row + 1) * b
        if shift >= 0:
            col = (node_id >> shift) & (self.cols - 1)
        else:  # partial final digit when b does not divide 128
            col = node_id & ((1 << (ID_BITS - row * b)) - 1)
        return row * self.cols + col

    def slot_for(self, node_id: int) -> Optional[Tuple[int, int]]:
        """The (row, col) where ``node_id`` belongs, or None for the owner."""
        if node_id == self._owner_id:
            return None
        return divmod(self._flat_for(node_id), self.cols)

    def get(self, row: int, col: int) -> Optional[NodeDescriptor]:
        return self._slots.get(row * self.cols + col)

    def entry_for(self, node_id: int) -> Optional[NodeDescriptor]:
        slot = self._slot_of.get(node_id)
        return self._slots[slot] if slot is not None else None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._slot_of

    def __len__(self) -> int:
        return len(self._slots)

    def entries(self) -> List[NodeDescriptor]:
        return list(self._slots.values())

    def row_entries(self, row: int) -> List[NodeDescriptor]:
        cols = self.cols
        return [d for f, d in self._slots.items() if f // cols == row]

    def occupied_rows(self) -> List[int]:
        cols = self.cols
        return sorted({f // cols for f in self._slots})

    # ------------------------------------------------------------------
    def add(
        self,
        desc: NodeDescriptor,
        proximity: Optional[Mapping[int, float]] = None,
    ) -> bool:
        """Consider ``desc`` for its slot.

        Empty slots are always filled.  An occupied slot is replaced only
        when a ``proximity`` map (node id -> measured proximity; missing
        nodes rank last) is supplied and the candidate is strictly closer
        (proximity neighbour selection).  Returns True when the table
        changed.
        """
        node_id = desc.id
        flat = self._slot_of.get(node_id)
        if flat is not None:  # this id already holds its slot
            if self._slots[flat].addr != desc.addr:  # rejoined, new address
                self._slots[flat] = desc
                return True
            return False
        if node_id == self._owner_id:
            return False
        flat = self._flat_for(node_id)
        current = self._slots.get(flat)
        if current is None:
            self._install(flat, desc)
            return True
        if proximity is not None:
            get = proximity.get
            if get(node_id, _INF) < get(current.id, _INF):
                del self._slot_of[current.id]
                self._install(flat, desc)
                return True
        return False

    def add_all(
        self,
        descs: Iterable[NodeDescriptor],
        proximity: Optional[Mapping[int, float]] = None,
    ) -> int:
        return sum(1 for d in descs if self.add(d, proximity))

    def _install(self, flat: int, desc: NodeDescriptor) -> None:
        self._slots[flat] = desc
        self._slot_of[desc.id] = flat

    def remove(self, node_id: int) -> bool:
        slot = self._slot_of.pop(node_id, None)
        if slot is None:
            return False
        del self._slots[slot]
        return True

    # ------------------------------------------------------------------
    def next_hop(self, key: int) -> Optional[NodeDescriptor]:
        """Primary routing step: the entry matching one more digit of ``key``."""
        if key == self._owner_id:
            return None  # shares every digit with the owner: no further hop
        return self._slots.get(self._flat_for(key))
