"""Pastry routing table: 128/b rows × 2^b columns of prefix-matched entries.

The entry at (row r, column c) holds a node whose id shares the first r
digits with the owner and has digit c at position r.  When proximity
neighbour selection is enabled, a slot prefers the entry with the smallest
network proximity among eligible candidates.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.pastry.nodeid import NodeDescriptor, digit, n_rows, shared_prefix_length


class RoutingTable:
    def __init__(self, owner: NodeDescriptor, b: int) -> None:
        self.owner = owner
        self.b = b
        self.rows = n_rows(b)
        self.cols = 1 << b
        self._slots: Dict[Tuple[int, int], NodeDescriptor] = {}
        self._slot_of: Dict[int, Tuple[int, int]] = {}  # node id -> (row, col)

    # ------------------------------------------------------------------
    def slot_for(self, node_id: int) -> Optional[Tuple[int, int]]:
        """The (row, col) where ``node_id`` belongs, or None for the owner."""
        if node_id == self.owner.id:
            return None
        row = shared_prefix_length(node_id, self.owner.id, self.b)
        return row, digit(node_id, row, self.b)

    def get(self, row: int, col: int) -> Optional[NodeDescriptor]:
        return self._slots.get((row, col))

    def entry_for(self, node_id: int) -> Optional[NodeDescriptor]:
        slot = self._slot_of.get(node_id)
        return self._slots[slot] if slot is not None else None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._slot_of

    def __len__(self) -> int:
        return len(self._slots)

    def entries(self) -> List[NodeDescriptor]:
        return list(self._slots.values())

    def row_entries(self, row: int) -> List[NodeDescriptor]:
        return [d for (r, _c), d in self._slots.items() if r == row]

    def occupied_rows(self) -> List[int]:
        return sorted({r for (r, _c) in self._slots})

    # ------------------------------------------------------------------
    def add(
        self,
        desc: NodeDescriptor,
        proximity: Optional[Callable[[NodeDescriptor], float]] = None,
    ) -> bool:
        """Consider ``desc`` for its slot.

        Empty slots are always filled.  An occupied slot is replaced only
        when a ``proximity`` function is supplied and the candidate is
        strictly closer (proximity neighbour selection).  Returns True when
        the table changed.
        """
        slot = self.slot_for(desc.id)
        if slot is None:
            return False
        current = self._slots.get(slot)
        if current is not None and current.id == desc.id:
            if current.addr != desc.addr:  # rejoined under a new address
                self._slots[slot] = desc
                return True
            return False
        if current is None:
            self._install(slot, desc)
            return True
        if proximity is not None and proximity(desc) < proximity(current):
            del self._slot_of[current.id]
            self._install(slot, desc)
            return True
        return False

    def add_all(
        self,
        descs: Iterable[NodeDescriptor],
        proximity: Optional[Callable[[NodeDescriptor], float]] = None,
    ) -> int:
        return sum(1 for d in descs if self.add(d, proximity))

    def _install(self, slot: Tuple[int, int], desc: NodeDescriptor) -> None:
        self._slots[slot] = desc
        self._slot_of[desc.id] = slot

    def remove(self, node_id: int) -> bool:
        slot = self._slot_of.pop(node_id, None)
        if slot is None:
            return False
        del self._slots[slot]
        return True

    # ------------------------------------------------------------------
    def next_hop(self, key: int) -> Optional[NodeDescriptor]:
        """Primary routing step: the entry matching one more digit of ``key``."""
        row = shared_prefix_length(key, self.owner.id, self.b)
        if row >= self.rows:
            return None  # key == owner id
        return self._slots.get((row, digit(key, row, self.b)))
