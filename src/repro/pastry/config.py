"""MSPastry configuration: every paper parameter plus feature toggles.

Defaults are the paper's base configuration (§5.1): ``b=4``, ``l=32``,
``Tls=30 s``, per-hop acks on, routing-table probing self-tuned to a 5% raw
loss rate, probe suppression on, symmetric distance probes on, and nodes
generating 0.01 lookups/s (the lookup rate lives in the workload generator,
not here).  The feature toggles exist for the paper's ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PastryConfig:
    # --- identifier space / routing structure (§2) ---------------------
    b: int = 4  # digit size in bits; routing table has 2^b columns
    leaf_set_size: int = 32  # l: l/2 neighbours on each side

    # --- failure detection (§3.1, §4.1) --------------------------------
    probe_timeout: float = 3.0  # To: same as the TCP SYN timeout
    max_probe_retries: int = 2
    heartbeat_period: float = 30.0  # Tls
    #: baseline for the §4.1 ablation: heartbeat every leaf-set member
    #: instead of only the left neighbour (cost grows with l)
    heartbeat_all_leafset: bool = False
    active_rt_probing: bool = True
    self_tuning: bool = True
    target_raw_loss: float = 0.05  # Lr: tuned raw loss rate target
    rt_probe_period: float = 60.0  # Trt when self-tuning is off
    rt_probe_period_max: float = 86400.0  # self-tuning upper clamp
    self_tuning_interval: float = 30.0  # how often Trt is recomputed
    #: ceiling on the liveness-sweep period: even when the raw-loss model
    #: says routing-table probing is unnecessary (tiny overlays, low churn),
    #: the whole routing state is swept at least this often so dead leaf-set
    #: members beyond the failure-announcement radius get cleaned up
    state_sweep_period: float = 900.0
    failure_history_size: int = 16  # K failures remembered for the mu estimate
    probe_suppression: bool = True
    #: how long a confirmed failure is remembered before the node is worth
    #: re-probing.  Under crash-stop a corpse stays dead and the veto could
    #: be eternal, but gray failures (receive-only, out-lossy nodes) recover
    #: — an everlasting failed set makes expelled-but-alive nodes, and in
    #: the worst case whole islets of them, unrecoverable.  On expiry the
    #: entry is dropped and re-probed once if it still belongs in the leaf
    #: set; repeated failures back off exponentially up to
    #: ``failed_backoff_max``.
    failed_memory: float = 120.0
    failed_backoff_max: float = 600.0
    #: §4.1 probe suppression applied to leaf-set candidate probes: a
    #: candidate we completed an LS-probe exchange with this recently is
    #: not re-probed just because a neighbour's leaf set mentions it.
    #: Under heavy membership flapping (gray failures, partition heal)
    #: every exchange re-offers the whole leaf set, and unsuppressed
    #: candidate probing cascades ring-wide.  Gated on probe_suppression.
    candidate_probe_suppression: float = 15.0

    # --- reliable routing (§3.2) ----------------------------------------
    per_hop_acks: bool = True
    rto_initial: float = 0.5
    rto_min: float = 0.05  # aggressive retransmission floor
    rto_max: float = 6.0
    #: srtt + w·rttvar; 2.0 is MSPastry-aggressive, 4.0 is standard TCP
    rto_variance_weight: float = 2.0
    max_reroutes: int = 8  # per-hop reroute attempts before giving up
    #: retransmissions to the same hop (with backoff) before excluding it.
    #: Off by default: rerouting around the silent hop is faster (the paper's
    #: aggressive strategy); consistency at the final hop is protected by
    #: deferred delivery (below) instead.
    same_hop_retransmits: int = 0
    #: before delivering, wait for a closer-but-suspected leaf-set node to
    #: either answer its probe (we forward to it) or be marked faulty (we
    #: deliver); bounds the consistency violations under link loss (§3.2)
    defer_delivery_on_suspect: bool = True
    delivery_defer_interval: float = 0.5
    max_delivery_deferrals: int = 4

    # --- proximity neighbour selection (§4.2) ---------------------------
    pns: bool = True
    distance_probe_count: int = 3  # probes per measurement (median taken)
    distance_probe_spacing: float = 1.0  # seconds between probes
    symmetric_distance_probes: bool = True
    nearest_neighbour_join: bool = True  # seed discovery before joining
    rt_maintenance_period: float = 1200.0  # periodic RT gossip (20 min)
    passive_rt_repair: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.b <= 8:
            raise ValueError(f"b out of range [1, 8]: {self.b}")
        if self.leaf_set_size < 2 or self.leaf_set_size % 2 != 0:
            raise ValueError(f"leaf set size must be even and >= 2: {self.leaf_set_size}")
        if self.probe_timeout <= 0 or self.heartbeat_period <= 0:
            raise ValueError("timeouts must be positive")
        if not 0.0 < self.target_raw_loss < 1.0:
            raise ValueError(f"target_raw_loss must be in (0, 1): {self.target_raw_loss}")

    @property
    def rt_probe_period_min(self) -> float:
        """Paper lower bound on Trt: (retries + 1) * To."""
        return (self.max_probe_retries + 1) * self.probe_timeout
