"""Built-in profiler (``repro profile``): cProfile + tracemalloc wrapper.

Wraps any paper experiment or ``repro bench`` scenario in cProfile (where
the cycles go) and tracemalloc (where the allocations go), prints a human
top-N table, and writes a schema-versioned JSON artifact under
``benchmarks/results/`` so every claimed optimisation is attributable to a
recorded profile rather than a one-off terminal session.

Like :mod:`repro.bench`, this module reads the wall clock by design and
therefore lives outside the simulation packages detlint's DET002 guards:
profiling measures *host* behaviour, not simulated behaviour.  The
simulated outcome of a profiled run is unchanged by the instrumentation —
for bench scenarios the artifact records the scenario fingerprint, which
must match an uninstrumented run bit for bit.

Memory columns: ``tracemalloc_peak_kb`` is the peak of Python-level
allocations during the profiled call (precise, per-call, resettable);
``peak_rss_kb`` is the OS-reported process high-water mark, which is
monotone across a process's lifetime and therefore only an upper bound
when several targets are profiled in one process.
"""

from __future__ import annotations

import cProfile
import inspect
import json
import platform
import pstats
import time
import tracemalloc
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

#: bump when the JSON layout changes incompatibly
SCHEMA = "repro-profile/1"
#: default artifact directory (versioned alongside the benchmark reports)
DEFAULT_OUT_DIR = "benchmarks/results"
#: smoke-mode experiment overrides: finish in seconds on CI runners
SMOKE_SCALE = 0.02
SMOKE_DURATION = 60.0


class ProfileError(Exception):
    """Unknown target, bad mode, or a malformed artifact."""


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# ----------------------------------------------------------------------
# Target resolution
# ----------------------------------------------------------------------

def resolve_target(name: str, kind: str = "auto") -> Tuple[str, object]:
    """Find ``name`` among the experiments and bench scenarios.

    Returns ``("experiment", module)`` or ``("bench", BenchScenario)``.
    With ``kind="auto"`` experiments win name clashes (none exist today).
    """
    from repro.bench import SCENARIOS
    from repro.experiments import ALL_EXPERIMENTS

    if kind not in ("auto", "experiment", "bench"):
        raise ProfileError(f"unknown kind {kind!r}")
    if kind in ("auto", "experiment") and name in ALL_EXPERIMENTS:
        return "experiment", ALL_EXPERIMENTS[name]
    if kind in ("auto", "bench"):
        for scenario in SCENARIOS:
            if scenario.name == name:
                return "bench", scenario
    known = sorted(ALL_EXPERIMENTS) + [s.name for s in SCENARIOS]
    raise ProfileError(
        f"unknown profile target {name!r}; known targets: {', '.join(known)}"
    )


def _experiment_kwargs(
    module,
    mode: str,
    seed: Optional[int],
    scale: Optional[float],
    duration: Optional[float],
) -> Dict[str, object]:
    """Map shared flags onto the experiment's run() signature (cli-style)."""
    signature = inspect.signature(module.run)
    if mode == "smoke":
        scale = SMOKE_SCALE if scale is None else scale
        duration = SMOKE_DURATION if duration is None else duration
    kwargs: Dict[str, object] = {}
    if seed is not None and "seed" in signature.parameters:
        kwargs["seed"] = seed
    if scale is not None:
        for name in ("trace_scale", "scale"):
            if name in signature.parameters:
                kwargs[name] = scale
                break
    if duration is not None and "duration" in signature.parameters:
        kwargs["duration"] = duration
    return kwargs


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------

def _hotspots(profiler: cProfile.Profile, top_n: int) -> List[Dict[str, object]]:
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append({
            "function": func,
            "file": filename,
            "line": line,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    rows.sort(key=lambda r: (-r["cumtime_s"], r["file"], r["line"], r["function"]))
    return rows[:top_n]


def run_profile(
    target: str,
    kind: str = "auto",
    mode: str = "full",
    top_n: int = 25,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    duration: Optional[float] = None,
) -> Dict[str, object]:
    """Profile one experiment or bench scenario; returns the report dict."""
    if mode not in ("full", "smoke"):
        raise ProfileError(f"unknown mode {mode!r} (expected 'full' or 'smoke')")
    resolved_kind, resolved = resolve_target(target, kind)

    if resolved_kind == "bench":
        quick = mode == "smoke"
        fn: Callable[[], object] = lambda: resolved.fn(quick)  # noqa: E731
    else:
        kwargs = _experiment_kwargs(resolved, mode, seed, scale, duration)
        fn = lambda: resolved.run(**kwargs)  # noqa: E731

    tracemalloc.start()
    tracemalloc.reset_peak()
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    value = fn()
    profiler.disable()
    wall = time.perf_counter() - started
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    if resolved_kind == "bench":
        work, fingerprint = value
        outcome: Dict[str, object] = {"work": work, "fingerprint": fingerprint}
    else:
        outcome = {"result_type": type(value).__name__}

    total_calls = sum(nc for (_k, (_cc, nc, _tt, _ct, _c))
                      in pstats.Stats(profiler).stats.items())
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "kind": resolved_kind,
        "target": target,
        "mode": mode,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "wall_s": round(wall, 4),
        "tracemalloc_peak_kb": round(peak / 1024.0, 1),
        "tracemalloc_current_kb": round(current / 1024.0, 1),
        "peak_rss_kb": _peak_rss_kb(),
        "total_calls": total_calls,
        "hotspots": _hotspots(profiler, top_n),
        "outcome": outcome,
    }
    return report


def default_out_path(report: Dict[str, object]) -> Path:
    return Path(DEFAULT_OUT_DIR) / (
        f"profile_{report['kind']}_{report['target']}_{report['mode']}.json"
    )


def write_profile(report: Dict[str, object], out: Optional[str] = None) -> Path:
    path = Path(out) if out else default_out_path(report)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Rendering and validation
# ----------------------------------------------------------------------

def _short_file(filename: str) -> str:
    marker = "repro/"
    idx = filename.rfind(marker)
    return filename[idx:] if idx >= 0 else filename


def render_profile(report: Dict[str, object]) -> str:
    lines = [
        f"repro profile — {report['kind']} {report['target']} "
        f"({report['mode']}) — python {report['python']}",
        f"wall {report['wall_s']:.3f}s   "
        f"tracemalloc peak {report['tracemalloc_peak_kb']:,.0f} KB   "
        f"calls {report['total_calls']:,d}",
        f"{'cumtime':>9s} {'tottime':>9s} {'ncalls':>10s}  function",
    ]
    for row in report["hotspots"]:
        where = f"{row['function']}  ({_short_file(row['file'])}:{row['line']})"
        lines.append(
            f"{row['cumtime_s']:>9.3f} {row['tottime_s']:>9.3f} "
            f"{row['ncalls']:>10,d}  {where}"
        )
    outcome = report.get("outcome") or {}
    if "fingerprint" in outcome:
        lines.append(f"fingerprint: {outcome['fingerprint']}")
    return "\n".join(lines)


def verify_profile_schema(report: Dict[str, object]) -> None:
    """Structural sanity check used by tests and the CI profile-smoke job."""
    if report.get("schema") != SCHEMA:
        raise ProfileError(f"bad schema: {report.get('schema')!r}")
    for key in ("kind", "target", "mode", "wall_s", "tracemalloc_peak_kb",
                "total_calls", "hotspots", "outcome"):
        if key not in report:
            raise ProfileError(f"missing key: {key}")
    if report["kind"] not in ("experiment", "bench"):
        raise ProfileError(f"bad kind: {report['kind']!r}")
    if not isinstance(report["hotspots"], list) or not report["hotspots"]:
        raise ProfileError("hotspots must be a non-empty list")
    for row in report["hotspots"]:
        for field in ("function", "file", "line", "ncalls",
                      "tottime_s", "cumtime_s"):
            if field not in row:
                raise ProfileError(f"hotspot row missing {field!r}")
    if report["kind"] == "bench" and "fingerprint" not in report["outcome"]:
        raise ProfileError("bench profile must record the scenario fingerprint")
