"""Command-line interface: run any paper experiment and print its report.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig6 --seed 7
    python -m repro.cli run topologies --scale 0.1 --duration 3600
    python -m repro.cli run all
    python -m repro.cli sweep examples/sweeps/fig6_seeds.json --jobs 4 --out out/fig6
    python -m repro.cli report out/fig6
    python -m repro.cli fuzz --seed 6 --budget 12 --out out/fuzz.json
    python -m repro.cli serve --port 9000 --metrics-port 9001
    python -m repro.cli serve --seed 127.0.0.1:9000
    python -m repro.cli live --nodes 5 --lookups 50 --out out/live.json

``--scale`` and ``--duration`` map onto each experiment's scale parameters
where applicable (trace population scale and simulated seconds).

``sweep`` expands a JSON sweep spec (see ``repro.harness.spec``) into
independent jobs, fans them out over ``--jobs`` worker processes, and writes
one JSON artifact per run plus a manifest under ``--out``.  Re-invoking the
same sweep resumes it (completed runs are skipped; ``--force`` re-runs
them).  ``report`` aggregates a sweep directory across seeds (mean/CI).

``lint`` runs detlint (``repro.analysis``) — the determinism &
simulation-correctness static analysis — over ``src/repro`` (or the given
paths).  ``--write-baseline`` accepts the current findings as pre-existing
debt; ``--all`` additionally runs ruff and mypy when they are installed.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.harness import (
    SpecError,
    StoreError,
    SweepProgress,
    SweepSpec,
    default_jobs,
    format_sweep_report,
    run_sweep,
)


def _kwargs_for(module, args) -> dict:
    """Map shared CLI flags onto the experiment's run() signature."""
    signature = inspect.signature(module.run)
    kwargs = {}
    if "seed" in signature.parameters and args.seed is not None:
        kwargs["seed"] = args.seed
    if args.scale is not None:
        for name in ("trace_scale", "scale"):
            if name in signature.parameters:
                kwargs[name] = args.scale
                break
    if args.duration is not None and "duration" in signature.parameters:
        kwargs["duration"] = args.duration
    return kwargs


def _fail(message: str, status: int = 1) -> int:
    print(f"error: {message}", file=sys.stderr)
    return status


def run_experiment(name: str, args) -> int:
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        print(f"unknown experiment {name!r}; try: {', '.join(ALL_EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    kwargs = _kwargs_for(module, args)
    # perf_counter, not time.time(): wall clock can step backwards (NTP),
    # and this is an interval measurement.  Real-clock reads are fine here
    # at all — the CLI sits outside the simulated world, which is why
    # DET002 allowlists repro/cli.py (see repro.analysis.rules_determinism).
    started = time.perf_counter()
    try:
        result = module.run(**kwargs)
    except Exception as exc:
        return _fail(f"{name}: {type(exc).__name__}: {exc}")
    elapsed = time.perf_counter() - started
    print(module.format_report(result))
    print(f"\n[{name} finished in {elapsed:.1f}s]")
    return 0


def cmd_sweep(args) -> int:
    try:
        spec = SweepSpec.from_file(args.spec)
    except SpecError as exc:
        return _fail(str(exc), status=2)
    if spec.experiment not in ALL_EXPERIMENTS:
        return _fail(
            f"spec names unknown experiment {spec.experiment!r}; "
            f"try: {', '.join(ALL_EXPERIMENTS)}", status=2)
    jobs_list = spec.expand()
    jobs = args.jobs if args.jobs is not None else default_jobs(len(jobs_list))
    progress = SweepProgress(len(jobs_list), workers=jobs,
                             enabled=not args.quiet)
    try:
        outcome = run_sweep(
            spec, args.out, jobs=jobs, timeout=args.timeout,
            force=args.force, progress=progress,
        )
    except StoreError as exc:
        return _fail(str(exc), status=2)
    except KeyboardInterrupt:
        print(f"\ninterrupted — completed runs are kept; re-invoke the same "
              f"command to resume into {args.out}", file=sys.stderr)
        return 130
    print(progress.summary(skipped=len(outcome.skipped)), file=sys.stderr)
    print(f"artifacts: {args.out}", file=sys.stderr)
    if outcome.failed:
        return _fail(f"{len(outcome.failed)} run(s) failed — see "
                     f"`python -m repro.cli report {args.out}`")
    return 0


def cmd_report(args) -> int:
    try:
        print(format_sweep_report(args.dir, metrics=args.metrics))
    except StoreError as exc:
        return _fail(str(exc), status=2)
    return 0


def cmd_bench(args) -> int:
    from repro.bench import BenchError, run_bench

    try:
        _report, text = run_bench(
            quick=args.quick,
            out=args.out,
            label=args.label,
            rebaseline=args.rebaseline,
            scenarios=args.scenarios,
        )
    except BenchError as exc:
        return _fail(str(exc), status=2)
    print(text)
    print(f"written: {args.out}", file=sys.stderr)
    return 0


def cmd_profile(args) -> int:
    from repro.profiler import (
        ProfileError,
        render_profile,
        run_profile,
        write_profile,
    )

    try:
        report = run_profile(
            args.target,
            kind=args.kind,
            mode=args.mode,
            top_n=args.top,
            seed=args.seed,
            scale=args.scale,
            duration=args.duration,
        )
        path = write_profile(report, args.out)
    except ProfileError as exc:
        return _fail(str(exc), status=2)
    print(render_profile(report))
    print(f"written: {path}", file=sys.stderr)
    return 0


def cmd_fuzz(args) -> int:
    from repro.adversary import (
        FuzzError,
        render_fuzz_report,
        run_fuzz,
        write_fuzz_artifact,
    )

    try:
        artifact = run_fuzz(
            seed=args.seed,
            budget=args.budget,
            threshold=args.threshold,
            n_nodes=args.nodes,
            recovery=args.recovery,
            shrink_budget=args.shrink_budget,
        )
        path = write_fuzz_artifact(artifact, args.out)
    except (FuzzError, ValueError) as exc:
        return _fail(str(exc), status=2)
    print(render_fuzz_report(artifact))
    print(f"written: {path}", file=sys.stderr)
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import (
        AnalysisError,
        Baseline,
        build_baseline,
        lint_paths,
        render_human,
        render_json,
        render_sarif,
        run_all_tools_cached,
    )

    if args.explain:
        from repro.analysis import runner  # noqa: F401 - registers rules
        from repro.analysis.core import EXEMPTIONS, REGISTRY
        from repro.analysis.project import PROJECT_REGISTRY
        for registry, tier in ((REGISTRY, "per-file"),
                               (PROJECT_REGISTRY, "whole-program")):
            for rule in registry.rules():
                scope = ", ".join(rule.packages) if rule.packages \
                    else "all files"
                print(f"{rule.code} ({rule.name}) [{tier}; {scope}]")
                print(f"    {rule.description}")
                if rule.exempt:
                    print(f"    exempt: {', '.join(rule.exempt)} — "
                          f"{rule.exempt_reason}")
        exemptions = EXEMPTIONS.all()
        if exemptions:
            print("\npackage exemptions:")
            for ex in exemptions:
                print(f"  {ex.package}: {', '.join(ex.codes)}")
                print(f"    {ex.reason}")
        return 0

    cache_path = None if args.no_cache else Path(args.cache)

    if args.write_wire_baseline:
        from repro.analysis.core import FileContext
        from repro.analysis.project import build_project
        from repro.analysis.runner import collect_files
        from repro.analysis.rules_flow import write_wire_baseline
        try:
            contexts = []
            for rel_path, abs_path in collect_files(args.paths):
                try:
                    contexts.append(FileContext.parse(
                        rel_path, abs_path.read_text(encoding="utf-8")))
                except SyntaxError:
                    continue
            count = write_wire_baseline(Path(args.wire_baseline),
                                        build_project(contexts))
        except (AnalysisError, OSError) as exc:
            return _fail(str(exc), status=2)
        print(f"wire baseline written: {args.wire_baseline} "
              f"({count} type id{'' if count == 1 else 's'})",
              file=sys.stderr)
        return 0

    try:
        baseline = Baseline() if args.no_baseline \
            else Baseline.load(args.baseline)
        report = lint_paths(
            args.paths, baseline=baseline, select=args.select,
            cache_path=cache_path,
            wire_baseline_path=Path(args.wire_baseline),
            validate_exemptions=args.check_exemptions)
    except AnalysisError as exc:
        return _fail(str(exc), status=2)
    if cache_path is not None:
        total = report.cache_hits + report.cache_misses
        project_note = "cached" if report.project_cached else "re-analyzed"
        print(f"[cache] reused {report.cache_hits}/{total} files; "
              f"project tier {project_note}", file=sys.stderr)

    status = 0
    if args.all:
        outcomes, cached = run_all_tools_cached(cache_path,
                                                report.tree_hash)
        for outcome in outcomes:
            if outcome.status == "failed":
                print(f"[{outcome.name}] FAILED\n{outcome.detail}",
                      file=sys.stderr)
                status = 1
            else:
                note = f" ({outcome.detail})" if outcome.detail else ""
                cached_note = " [cached]" if cached else ""
                print(f"[{outcome.name}] {outcome.status}{note}"
                      f"{cached_note}", file=sys.stderr)

    if args.write_baseline:
        build_baseline(report.findings).save(args.baseline)
        print(f"baseline written: {args.baseline} "
              f"({len(report.findings)} entr"
              f"{'y' if len(report.findings) == 1 else 'ies'})",
              file=sys.stderr)
        return status

    if args.format == "sarif":
        from repro.analysis.core import REGISTRY
        from repro.analysis.project import PROJECT_REGISTRY
        print(render_sarif(report.result.new, report.result.baselined,
                           rules=(REGISTRY.rules()
                                  + PROJECT_REGISTRY.rules())))
    else:
        render = render_json if args.format == "json" else render_human
        print(render(report.result.new, report.result.baselined,
                     report.result.stale, report.notes))
    return 1 if report.failed else status


def cmd_serve(args) -> int:
    import asyncio
    import random
    import signal

    from repro.pastry.nodeid import random_nodeid
    from repro.runtime.service import NodeService
    from repro.runtime.transport import pack_addr

    if args.id is not None:
        node_id = int(args.id, 16)
    else:
        node_id = random_nodeid(random.Random(args.rng_seed))
    seed_addr = None
    if args.seed is not None:
        host, _, port = args.seed.rpartition(":")
        if not host or not port.isdigit():
            return _fail(f"--seed wants HOST:PORT, got {args.seed!r}")
        seed_addr = pack_addr(host, int(port))

    async def serve() -> None:
        loop = asyncio.get_event_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        service = await NodeService.start(
            node_id=node_id, rng_seed=args.rng_seed, host=args.host,
            port=args.port, seed_addr=seed_addr,
            metrics_port=args.metrics_port, loop=loop)
        print(f"node {node_id:032x}", file=sys.stderr)
        print(f"listening on {service.endpoint}", file=sys.stderr)
        if service.metrics is not None:
            print(f"metrics on http://{args.host}:{service.metrics.port}/",
                  file=sys.stderr)
        try:
            await stop.wait()
        finally:
            print("shutting down", file=sys.stderr)
            await service.stop()

    asyncio.run(serve())
    return 0


def cmd_live(args) -> int:
    from repro.runtime.live import (
        LiveError,
        LiveSpec,
        format_live_report,
        run_live,
        write_live_artifact,
    )

    spec = LiveSpec(n_nodes=args.nodes, n_lookups=args.lookups,
                    seed=args.seed, host=args.host,
                    join_timeout=args.timeout, lookup_timeout=args.timeout)
    try:
        artifact = run_live(spec)
    except LiveError as exc:
        return _fail(str(exc))
    print(format_live_report(artifact))
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        write_live_artifact(artifact, args.out)
        print(f"written: {args.out}", file=sys.stderr)
    consistency = artifact["lookups"]["routing_consistency"]
    if args.min_consistency is not None:
        if consistency is None or consistency < args.min_consistency:
            return _fail(
                f"routing consistency {consistency} below required "
                f"{args.min_consistency}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the MSPastry (DSN 2004) evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment name or 'all'")
    runner.add_argument("--seed", type=int, default=None)
    runner.add_argument("--scale", type=float, default=None,
                        help="trace population scale (fraction of the paper's)")
    runner.add_argument("--duration", type=float, default=None,
                        help="simulated seconds")

    sweep = sub.add_parser(
        "sweep", help="run a parameter sweep from a JSON spec")
    sweep.add_argument("spec", help="path to a sweep spec (JSON)")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: one per available "
                            "CPU, capped at the job count; serial on a "
                            "single-core machine)")
    sweep.add_argument("--out", required=True,
                       help="output directory for artifacts + manifest")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds")
    sweep.add_argument("--force", action="store_true",
                       help="re-run jobs whose artifacts already exist")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")

    report = sub.add_parser(
        "report", help="aggregate a sweep directory (mean/CI across seeds)")
    report.add_argument("dir", help="sweep output directory")
    report.add_argument("--metric", action="append", dest="metrics",
                        metavar="SUBSTR",
                        help="only metrics containing SUBSTR (repeatable)")

    bench = sub.add_parser(
        "bench", help="run the simulation-core benchmark suite")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads (CI smoke; not comparable "
                            "with full-mode baselines)")
    bench.add_argument("--out", default="BENCH_sim_core.json",
                       help="output JSON (default: BENCH_sim_core.json)")
    bench.add_argument("--label", default="",
                       help="label recorded with this run (e.g. a PR name)")
    bench.add_argument("--rebaseline", action="store_true",
                       help="record this run's numbers as the new baseline")
    bench.add_argument("--scenario", action="append", dest="scenarios",
                       metavar="NAME",
                       help="only run the given scenario(s) (repeatable); "
                            "also the only way to run opt-in scenarios "
                            "such as full_gnutella")

    profile = sub.add_parser(
        "profile",
        help="profile an experiment or bench scenario (cProfile + tracemalloc)")
    profile.add_argument("target",
                         help="experiment name (see `repro list`) or bench "
                              "scenario name (see `repro bench`)")
    profile.add_argument("--kind", choices=("auto", "experiment", "bench"),
                         default="auto",
                         help="disambiguate the target namespace "
                              "(default: experiments first, then scenarios)")
    profile.add_argument("--mode", choices=("full", "smoke"), default="full",
                         help="smoke: tiny workload (bench --quick sizes / "
                              "scaled-down experiment), for CI")
    profile.add_argument("--top", type=int, default=25,
                         help="hotspot rows to keep (default: 25)")
    profile.add_argument("--out", default=None,
                         help="artifact path (default: benchmarks/results/"
                              "profile_<kind>_<target>_<mode>.json)")
    profile.add_argument("--seed", type=int, default=None)
    profile.add_argument("--scale", type=float, default=None,
                         help="experiment trace/population scale override")
    profile.add_argument("--duration", type=float, default=None,
                         help="experiment simulated seconds override")

    fuzz = sub.add_parser(
        "fuzz",
        help="search attack schedules for routing-consistency violations "
             "and shrink the first failure to a minimal reproduction")
    fuzz.add_argument("--seed", type=int, default=42,
                      help="master seed; same seed => byte-identical artifact")
    fuzz.add_argument("--budget", type=int, default=12,
                      help="generated schedules to try (default: 12)")
    fuzz.add_argument("--threshold", type=float, default=0.9,
                      help="routing-consistency failure threshold "
                           "(default: 0.9)")
    fuzz.add_argument("--nodes", type=int, default=24,
                      help="overlay size per trial (default: 24)")
    fuzz.add_argument("--recovery", type=float, default=240.0,
                      help="post-attack observation window in simulated "
                           "seconds (default: 240)")
    fuzz.add_argument("--shrink-budget", type=int, default=16,
                      help="max trials spent shrinking a failure "
                           "(default: 16)")
    fuzz.add_argument("--out", default="out/fuzz.json",
                      help="artifact path (default: out/fuzz.json)")

    lint = sub.add_parser(
        "lint", help="run detlint static analysis (determinism contracts)")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files/directories to scan (default: src/repro)")
    lint.add_argument("--format", choices=("human", "json", "sarif"),
                      default="human")
    lint.add_argument("--baseline", default=".detlint-baseline.json",
                      help="baseline file (default: .detlint-baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, baselined or not")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept all current findings as pre-existing debt")
    lint.add_argument("--select", action="append", metavar="CODE",
                      help="only run the given rule code(s) (repeatable)")
    lint.add_argument("--explain", action="store_true",
                      help="describe every rule and package exemption, "
                           "then exit")
    lint.add_argument("--all", action="store_true",
                      help="also run ruff and mypy (skipped if not installed)")
    lint.add_argument("--cache", default=".detlint-cache.json",
                      help="incremental cache file "
                           "(default: .detlint-cache.json)")
    lint.add_argument("--no-cache", action="store_true",
                      help="analyze everything from scratch, "
                           "don't read or write the cache")
    lint.add_argument("--wire-baseline", default=".detlint-wire-baseline.json",
                      help="committed wire type-id baseline for WIRE002 "
                           "(default: .detlint-wire-baseline.json)")
    lint.add_argument("--write-wire-baseline", action="store_true",
                      help="pin the current wire _REGISTRY type ids as the "
                           "append-only baseline")
    lint.add_argument("--check-exemptions", action="store_true",
                      help="error if any package exemption matches no "
                           "scanned file (CI hygiene)")

    serve = sub.add_parser(
        "serve", help="run one live MSPastry node on a real UDP socket")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="UDP port (default: OS-assigned)")
    serve.add_argument("--seed", metavar="HOST:PORT", default=None,
                       help="endpoint of any live node to join via "
                            "(omit to bootstrap a new overlay)")
    serve.add_argument("--id", default=None,
                       help="128-bit nodeId as hex (default: derived "
                            "from --rng-seed)")
    serve.add_argument("--rng-seed", type=int, default=0,
                       help="seed for the node's random stream")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve JSON node metrics over HTTP on this port")

    live = sub.add_parser(
        "live", help="run an N-node live UDP overlay plus lookup workload")
    live.add_argument("--nodes", type=int, default=5)
    live.add_argument("--lookups", type=int, default=50)
    live.add_argument("--seed", type=int, default=42)
    live.add_argument("--host", default="127.0.0.1")
    live.add_argument("--timeout", type=float, default=30.0,
                      help="join/workload timeout in seconds")
    live.add_argument("--out", default=None,
                      help="write the repro-live/1 artifact here")
    live.add_argument("--min-consistency", type=float, default=None,
                      help="exit non-zero below this routing consistency "
                           "(CI gate)")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:12s} {doc}")
        return 0
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "fuzz":
        return cmd_fuzz(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "live":
        return cmd_live(args)

    if args.experiment == "all":
        status = 0
        for name in ALL_EXPERIMENTS:
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            status |= run_experiment(name, args)
        return status
    return run_experiment(args.experiment, args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; silence the traceback
        # and exit like a well-behaved filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
