"""Command-line interface: run any paper experiment and print its report.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig6 --seed 7
    python -m repro.cli run topologies --scale 0.1 --duration 3600
    python -m repro.cli run all

``--scale`` and ``--duration`` map onto each experiment's scale parameters
where applicable (trace population scale and simulated seconds).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def _kwargs_for(module, args) -> dict:
    """Map shared CLI flags onto the experiment's run() signature."""
    signature = inspect.signature(module.run)
    kwargs = {}
    if "seed" in signature.parameters and args.seed is not None:
        kwargs["seed"] = args.seed
    if args.scale is not None:
        for name in ("trace_scale", "scale"):
            if name in signature.parameters:
                kwargs[name] = args.scale
                break
    if args.duration is not None and "duration" in signature.parameters:
        kwargs["duration"] = args.duration
    return kwargs


def run_experiment(name: str, args) -> int:
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        print(f"unknown experiment {name!r}; try: {', '.join(ALL_EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    kwargs = _kwargs_for(module, args)
    started = time.time()
    result = module.run(**kwargs)
    elapsed = time.time() - started
    print(module.format_report(result))
    print(f"\n[{name} finished in {elapsed:.1f}s]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the MSPastry (DSN 2004) evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment name or 'all'")
    runner.add_argument("--seed", type=int, default=None)
    runner.add_argument("--scale", type=float, default=None,
                        help="trace population scale (fraction of the paper's)")
    runner.add_argument("--duration", type=float, default=None,
                        help="simulated seconds")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:12s} {doc}")
        return 0

    if args.experiment == "all":
        status = 0
        for name in ALL_EXPERIMENTS:
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            status |= run_experiment(name, args)
        return status
    return run_experiment(args.experiment, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
