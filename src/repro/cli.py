"""Command-line interface: run any paper experiment and print its report.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig6 --seed 7
    python -m repro.cli run topologies --scale 0.1 --duration 3600
    python -m repro.cli run all
    python -m repro.cli sweep examples/sweeps/fig6_seeds.json --jobs 4 --out out/fig6
    python -m repro.cli report out/fig6
    python -m repro.cli fuzz --seed 6 --budget 12 --out out/fuzz.json

``--scale`` and ``--duration`` map onto each experiment's scale parameters
where applicable (trace population scale and simulated seconds).

``sweep`` expands a JSON sweep spec (see ``repro.harness.spec``) into
independent jobs, fans them out over ``--jobs`` worker processes, and writes
one JSON artifact per run plus a manifest under ``--out``.  Re-invoking the
same sweep resumes it (completed runs are skipped; ``--force`` re-runs
them).  ``report`` aggregates a sweep directory across seeds (mean/CI).

``lint`` runs detlint (``repro.analysis``) — the determinism &
simulation-correctness static analysis — over ``src/repro`` (or the given
paths).  ``--write-baseline`` accepts the current findings as pre-existing
debt; ``--all`` additionally runs ruff and mypy when they are installed.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.harness import (
    SpecError,
    StoreError,
    SweepProgress,
    SweepSpec,
    default_jobs,
    format_sweep_report,
    run_sweep,
)


def _kwargs_for(module, args) -> dict:
    """Map shared CLI flags onto the experiment's run() signature."""
    signature = inspect.signature(module.run)
    kwargs = {}
    if "seed" in signature.parameters and args.seed is not None:
        kwargs["seed"] = args.seed
    if args.scale is not None:
        for name in ("trace_scale", "scale"):
            if name in signature.parameters:
                kwargs[name] = args.scale
                break
    if args.duration is not None and "duration" in signature.parameters:
        kwargs["duration"] = args.duration
    return kwargs


def _fail(message: str, status: int = 1) -> int:
    print(f"error: {message}", file=sys.stderr)
    return status


def run_experiment(name: str, args) -> int:
    module = ALL_EXPERIMENTS.get(name)
    if module is None:
        print(f"unknown experiment {name!r}; try: {', '.join(ALL_EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    kwargs = _kwargs_for(module, args)
    # perf_counter, not time.time(): wall clock can step backwards (NTP),
    # and this is an interval measurement.  Real-clock reads are fine here
    # at all — the CLI sits outside the simulated world, which is why
    # DET002 allowlists repro/cli.py (see repro.analysis.rules_determinism).
    started = time.perf_counter()
    try:
        result = module.run(**kwargs)
    except Exception as exc:
        return _fail(f"{name}: {type(exc).__name__}: {exc}")
    elapsed = time.perf_counter() - started
    print(module.format_report(result))
    print(f"\n[{name} finished in {elapsed:.1f}s]")
    return 0


def cmd_sweep(args) -> int:
    try:
        spec = SweepSpec.from_file(args.spec)
    except SpecError as exc:
        return _fail(str(exc), status=2)
    if spec.experiment not in ALL_EXPERIMENTS:
        return _fail(
            f"spec names unknown experiment {spec.experiment!r}; "
            f"try: {', '.join(ALL_EXPERIMENTS)}", status=2)
    jobs_list = spec.expand()
    jobs = args.jobs if args.jobs is not None else default_jobs(len(jobs_list))
    progress = SweepProgress(len(jobs_list), workers=jobs,
                             enabled=not args.quiet)
    try:
        outcome = run_sweep(
            spec, args.out, jobs=jobs, timeout=args.timeout,
            force=args.force, progress=progress,
        )
    except StoreError as exc:
        return _fail(str(exc), status=2)
    except KeyboardInterrupt:
        print(f"\ninterrupted — completed runs are kept; re-invoke the same "
              f"command to resume into {args.out}", file=sys.stderr)
        return 130
    print(progress.summary(skipped=len(outcome.skipped)), file=sys.stderr)
    print(f"artifacts: {args.out}", file=sys.stderr)
    if outcome.failed:
        return _fail(f"{len(outcome.failed)} run(s) failed — see "
                     f"`python -m repro.cli report {args.out}`")
    return 0


def cmd_report(args) -> int:
    try:
        print(format_sweep_report(args.dir, metrics=args.metrics))
    except StoreError as exc:
        return _fail(str(exc), status=2)
    return 0


def cmd_bench(args) -> int:
    from repro.bench import BenchError, run_bench

    try:
        _report, text = run_bench(
            quick=args.quick,
            out=args.out,
            label=args.label,
            rebaseline=args.rebaseline,
            scenarios=args.scenarios,
        )
    except BenchError as exc:
        return _fail(str(exc), status=2)
    print(text)
    print(f"written: {args.out}", file=sys.stderr)
    return 0


def cmd_profile(args) -> int:
    from repro.profiler import (
        ProfileError,
        render_profile,
        run_profile,
        write_profile,
    )

    try:
        report = run_profile(
            args.target,
            kind=args.kind,
            mode=args.mode,
            top_n=args.top,
            seed=args.seed,
            scale=args.scale,
            duration=args.duration,
        )
        path = write_profile(report, args.out)
    except ProfileError as exc:
        return _fail(str(exc), status=2)
    print(render_profile(report))
    print(f"written: {path}", file=sys.stderr)
    return 0


def cmd_fuzz(args) -> int:
    from repro.adversary import (
        FuzzError,
        render_fuzz_report,
        run_fuzz,
        write_fuzz_artifact,
    )

    try:
        artifact = run_fuzz(
            seed=args.seed,
            budget=args.budget,
            threshold=args.threshold,
            n_nodes=args.nodes,
            recovery=args.recovery,
            shrink_budget=args.shrink_budget,
        )
        path = write_fuzz_artifact(artifact, args.out)
    except (FuzzError, ValueError) as exc:
        return _fail(str(exc), status=2)
    print(render_fuzz_report(artifact))
    print(f"written: {path}", file=sys.stderr)
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import (
        AnalysisError,
        Baseline,
        build_baseline,
        lint_paths,
        render_human,
        render_json,
        run_all_tools,
    )

    status = 0
    if args.all:
        for outcome in run_all_tools():
            if outcome.status == "failed":
                print(f"[{outcome.name}] FAILED\n{outcome.detail}",
                      file=sys.stderr)
                status = 1
            else:
                note = f" ({outcome.detail})" if outcome.detail else ""
                print(f"[{outcome.name}] {outcome.status}{note}",
                      file=sys.stderr)

    try:
        baseline = Baseline() if args.no_baseline \
            else Baseline.load(args.baseline)
        report = lint_paths(args.paths, baseline=baseline,
                            select=args.select)
    except AnalysisError as exc:
        return _fail(str(exc), status=2)

    if args.write_baseline:
        build_baseline(report.findings).save(args.baseline)
        print(f"baseline written: {args.baseline} "
              f"({len(report.findings)} entr"
              f"{'y' if len(report.findings) == 1 else 'ies'})",
              file=sys.stderr)
        return status

    render = render_json if args.format == "json" else render_human
    print(render(report.result.new, report.result.baselined,
                 report.result.stale, report.notes))
    return 1 if report.failed else status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the MSPastry (DSN 2004) evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment name or 'all'")
    runner.add_argument("--seed", type=int, default=None)
    runner.add_argument("--scale", type=float, default=None,
                        help="trace population scale (fraction of the paper's)")
    runner.add_argument("--duration", type=float, default=None,
                        help="simulated seconds")

    sweep = sub.add_parser(
        "sweep", help="run a parameter sweep from a JSON spec")
    sweep.add_argument("spec", help="path to a sweep spec (JSON)")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: one per available "
                            "CPU, capped at the job count; serial on a "
                            "single-core machine)")
    sweep.add_argument("--out", required=True,
                       help="output directory for artifacts + manifest")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds")
    sweep.add_argument("--force", action="store_true",
                       help="re-run jobs whose artifacts already exist")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")

    report = sub.add_parser(
        "report", help="aggregate a sweep directory (mean/CI across seeds)")
    report.add_argument("dir", help="sweep output directory")
    report.add_argument("--metric", action="append", dest="metrics",
                        metavar="SUBSTR",
                        help="only metrics containing SUBSTR (repeatable)")

    bench = sub.add_parser(
        "bench", help="run the simulation-core benchmark suite")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads (CI smoke; not comparable "
                            "with full-mode baselines)")
    bench.add_argument("--out", default="BENCH_sim_core.json",
                       help="output JSON (default: BENCH_sim_core.json)")
    bench.add_argument("--label", default="",
                       help="label recorded with this run (e.g. a PR name)")
    bench.add_argument("--rebaseline", action="store_true",
                       help="record this run's numbers as the new baseline")
    bench.add_argument("--scenario", action="append", dest="scenarios",
                       metavar="NAME",
                       help="only run the given scenario(s) (repeatable)")

    profile = sub.add_parser(
        "profile",
        help="profile an experiment or bench scenario (cProfile + tracemalloc)")
    profile.add_argument("target",
                         help="experiment name (see `repro list`) or bench "
                              "scenario name (see `repro bench`)")
    profile.add_argument("--kind", choices=("auto", "experiment", "bench"),
                         default="auto",
                         help="disambiguate the target namespace "
                              "(default: experiments first, then scenarios)")
    profile.add_argument("--mode", choices=("full", "smoke"), default="full",
                         help="smoke: tiny workload (bench --quick sizes / "
                              "scaled-down experiment), for CI")
    profile.add_argument("--top", type=int, default=25,
                         help="hotspot rows to keep (default: 25)")
    profile.add_argument("--out", default=None,
                         help="artifact path (default: benchmarks/results/"
                              "profile_<kind>_<target>_<mode>.json)")
    profile.add_argument("--seed", type=int, default=None)
    profile.add_argument("--scale", type=float, default=None,
                         help="experiment trace/population scale override")
    profile.add_argument("--duration", type=float, default=None,
                         help="experiment simulated seconds override")

    fuzz = sub.add_parser(
        "fuzz",
        help="search attack schedules for routing-consistency violations "
             "and shrink the first failure to a minimal reproduction")
    fuzz.add_argument("--seed", type=int, default=42,
                      help="master seed; same seed => byte-identical artifact")
    fuzz.add_argument("--budget", type=int, default=12,
                      help="generated schedules to try (default: 12)")
    fuzz.add_argument("--threshold", type=float, default=0.9,
                      help="routing-consistency failure threshold "
                           "(default: 0.9)")
    fuzz.add_argument("--nodes", type=int, default=24,
                      help="overlay size per trial (default: 24)")
    fuzz.add_argument("--recovery", type=float, default=240.0,
                      help="post-attack observation window in simulated "
                           "seconds (default: 240)")
    fuzz.add_argument("--shrink-budget", type=int, default=16,
                      help="max trials spent shrinking a failure "
                           "(default: 16)")
    fuzz.add_argument("--out", default="out/fuzz.json",
                      help="artifact path (default: out/fuzz.json)")

    lint = sub.add_parser(
        "lint", help="run detlint static analysis (determinism contracts)")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files/directories to scan (default: src/repro)")
    lint.add_argument("--format", choices=("human", "json"), default="human")
    lint.add_argument("--baseline", default=".detlint-baseline.json",
                      help="baseline file (default: .detlint-baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, baselined or not")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept all current findings as pre-existing debt")
    lint.add_argument("--select", action="append", metavar="CODE",
                      help="only run the given rule code(s) (repeatable)")
    lint.add_argument("--all", action="store_true",
                      help="also run ruff and mypy (skipped if not installed)")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:12s} {doc}")
        return 0
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "fuzz":
        return cmd_fuzz(args)
    if args.command == "lint":
        return cmd_lint(args)

    if args.experiment == "all":
        status = 0
        for name in ALL_EXPERIMENTS:
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            status |= run_experiment(name, args)
        return status
    return run_experiment(args.experiment, args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; silence the traceback
        # and exit like a well-behaved filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
