#!/usr/bin/env python
"""Quickstart: build an MSPastry overlay, route lookups, survive a crash.

Run:  python examples/quickstart.py
"""

import random

from repro.overlay import build_overlay
from repro.pastry import PastryConfig
from repro.pastry.nodeid import random_nodeid, ring_distance


def main() -> None:
    # 1. Build a 32-node overlay through the real join protocol (each node
    #    joins via the bootstrap node, probes its leaf set, and activates).
    config = PastryConfig()  # paper base config: b=4, l=32, Tls=30s, acks on
    sim, network, nodes = build_overlay(32, config=config, seed=7)
    print(f"overlay up: {sum(n.active for n in nodes)} active nodes, "
          f"{network.messages_sent} messages exchanged")

    # 2. Route lookups to random keys and watch them land on the right node.
    delivered = []
    for node in nodes:
        node.on_deliver = lambda n, msg: delivered.append((n, msg))

    rng = random.Random(1)
    keys = [random_nodeid(rng) for _ in range(20)]
    source = nodes[0]
    for key in keys:
        source.lookup(key)
    sim.run(until=sim.now + 30)

    correct = 0
    for node, msg in delivered:
        root = min(nodes, key=lambda n: (ring_distance(n.id, msg.key), n.id))
        correct += node.id == root.id
    print(f"lookups delivered: {len(delivered)}/{len(keys)}, "
          f"at the correct root: {correct}/{len(delivered)}")

    # 3. Crash a node mid-operation: MSPastry detects the failure, repairs
    #    the leaf sets, and keeps routing consistently.
    victim = nodes[5]
    print(f"crashing node {victim.id:#034x}")
    victim.crash()
    sim.run(until=sim.now + 120)  # heartbeat detection + probes + repair

    survivors = [n for n in nodes if not n.crashed]
    delivered.clear()
    for key in keys:
        nodes[1].lookup(key)
    sim.run(until=sim.now + 30)
    correct = sum(
        node.id == min(survivors,
                       key=lambda n: (ring_distance(n.id, msg.key), n.id)).id
        for node, msg in delivered
    )
    print(f"after the crash: {correct}/{len(delivered)} lookups still reach "
          f"the correct (surviving) root")


if __name__ == "__main__":
    main()
