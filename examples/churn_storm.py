#!/usr/bin/env python
"""Dependable routing under a Gnutella-grade churn storm.

Replays two simulated hours of Gnutella-style churn (lognormal sessions,
diurnal arrivals) against a transit-stub network and reports the paper's
four metrics: lookup loss, incorrect deliveries, RDP, control traffic.

Run:  python examples/churn_storm.py
"""

from repro.experiments.scenarios import Scenario


def main() -> None:
    scenario = Scenario(seed=23, topology="gatech")
    print("running ~2 h of Gnutella churn on the GATech transit-stub "
          "topology (this takes a minute)...")
    result = scenario.run_gnutella(scale=0.06, duration=7200.0)

    stats = result.stats
    print(f"\ntrace: {result.trace_name}, duration {result.duration / 3600:.1f} h")
    print(f"final active nodes:        {result.final_active}")
    print(f"joins completed:           {len(stats.join_latencies)}")
    print(f"nodes that died joining:   {result.nodes_never_activated}")
    print(f"lookups issued:            {stats.n_lookups}")
    print(f"lookup loss rate:          {result.loss_rate:.2e}")
    print(f"incorrect delivery rate:   {result.incorrect_delivery_rate:.2e}")
    print(f"relative delay penalty:    {result.rdp:.2f} (median "
          f"{result.rdp_median:.2f})")
    print(f"control traffic:           {result.control_traffic:.3f} "
          f"msg/s/node (paper: < 0.5)")

    print("\ncontrol traffic over time:")
    for t, value in stats.control_traffic_series():
        bar = "#" * int(value * 120)
        print(f"  {t / 60:5.0f} min  {value:5.3f}  {bar}")


if __name__ == "__main__":
    main()
