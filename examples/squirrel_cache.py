#!/usr/bin/env python
"""Squirrel: a decentralized web cache on MSPastry (paper §5.3.1).

Office desktops pool their caches: each URL is hashed to a *home node* that
caches it for everyone.  The example replays a synthetic one-day office
workload and reports hit rates and bandwidth saved.

Run:  python examples/squirrel_cache.py
"""


from repro.apps.squirrel import SquirrelProxy, WebOrigin
from repro.network.corpnet import CorpNetTopology
from repro.overlay.utils import build_overlay
from repro.pastry import PastryConfig
from repro.sim.rng import RngStreams
from repro.traces.squirrel import generate_squirrel_trace


def main() -> None:
    streams = RngStreams(11)
    topology = CorpNetTopology(streams.stream("topology"), n_sites=2,
                               routers_per_site=15)
    sim, network, nodes = build_overlay(
        30, config=PastryConfig(), topology=topology, seed=11
    )
    origin = WebOrigin(fetch_delay=0.3)
    proxies = [SquirrelProxy(node, origin) for node in nodes]
    print(f"Squirrel cache running on {len(proxies)} desktops")

    # One simulated work day of browsing: Zipf-popular URLs, Poisson times.
    rng = streams.stream("workload")
    trace = generate_squirrel_trace(rng, n_machines=len(proxies), n_days=1,
                                    peak_request_rate=0.05, n_urls=500)
    t0 = sim.now
    for t, machine, url in trace.lookups:
        proxy = proxies[machine % len(proxies)]
        sim.schedule(t0 + t % 86400.0,
                     lambda p=proxy, u=url: p.request(f"http://corp/page{u}"))
    sim.run(until=t0 + 86400.0 + 60.0)

    requests = sum(p.requests for p in proxies)
    local = sum(p.local_hits for p in proxies)
    remote = sum(p.remote_hits for p in proxies)
    fetches = sum(p.origin_fetches for p in proxies)
    print(f"requests:        {requests}")
    print(f"local hits:      {local}  ({local / requests:.1%})")
    print(f"overlay hits:    {remote}  ({remote / requests:.1%})")
    print(f"origin fetches:  {fetches}  ({fetches / requests:.1%})")
    print(f"external bandwidth saved: {1 - fetches / requests:.1%}")


if __name__ == "__main__":
    main()
