#!/usr/bin/env python
"""A replicated DHT on MSPastry: puts, gets, and surviving root failures.

Run:  python examples/dht_storage.py
"""

from repro.apps.dht import Dht
from repro.overlay import build_overlay
from repro.pastry import PastryConfig
from repro.pastry.nodeid import ring_distance


def main() -> None:
    sim, network, nodes = build_overlay(24, config=PastryConfig(), seed=17)
    dht = Dht(nodes, n_replicas=4)
    print(f"DHT over {len(dht)} nodes, 4 replicas per key")

    # Store a handful of documents from different clients.
    documents = {f"doc-{i}": f"contents of document {i}" for i in range(8)}
    stored_keys = {}
    for i, (name, body) in enumerate(documents.items()):
        stored_keys[name] = dht[i % len(dht)].put(name, body)
    sim.run(until=sim.now + 20)
    print(f"stored {len(documents)} documents")

    # Read each one back from an unrelated client.
    hits = []
    for name in documents:
        dht[11].get(name, lambda r, n=name: hits.append((n, r.ok)))
    sim.run(until=sim.now + 20)
    print(f"reads ok: {sum(ok for _n, ok in hits)}/{len(hits)}")

    # Crash the root of one key; a replica takes over.
    name, key = next(iter(stored_keys.items()))
    root = min(nodes, key=lambda n: (ring_distance(n.id, key), n.id))
    print(f"crashing the root of {name!r} ({root.id:#034x})")
    root.crash()
    sim.run(until=sim.now + 180)

    survivors = [d for d in dht.nodes if not d.node.crashed]
    result = []
    survivors[0].get(name, result.append)
    sim.run(until=sim.now + 20)
    outcome = "recovered from a replica" if result and result[0].ok else "LOST"
    print(f"read of {name!r} after the crash: {outcome}")


if __name__ == "__main__":
    main()
