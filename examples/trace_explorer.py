#!/usr/bin/env python
"""Explore the churn traces driving the paper's fault injection (Fig 3).

Generates the three real-world trace reconstructions, prints their headline
statistics (session times, population envelope, failure rates) and an ASCII
failure-rate timeline, and round-trips one through the text format.

Run:  python examples/trace_explorer.py
"""

import io
import statistics

from repro.sim.rng import RngStreams
from repro.traces import (
    GNUTELLA,
    MICROSOFT,
    OVERNET,
    active_count_series,
    failure_rate_series,
    generate_real_world_trace,
    load_trace,
    save_trace,
)


def explore(model, scale):
    streams = RngStreams(99)
    trace = generate_real_world_trace(
        streams.stream(f"trace-{model.name}"), model, scale=scale
    )
    sessions = trace.session_times()
    _, counts = active_count_series(trace, model.analysis_window)
    times, rates = failure_rate_series(trace, model.analysis_window)

    print(f"\n=== {model.name} (scale {scale}) ===")
    print(f"events: {len(trace)}, duration {trace.duration / 3600:.0f} h")
    print(f"session mean {statistics.mean(sessions) / 60:.0f} min "
          f"(model: {model.mean_session / 60:.0f}), "
          f"median {statistics.median(sessions) / 60:.0f} min "
          f"(model: {model.median_session / 60:.0f})")
    print(f"active population {min(counts):.0f}..{max(counts):.0f}")
    peak = max(rates) or 1.0
    print("failure rate timeline (each row = one analysis window bucket):")
    step = max(1, len(rates) // 18)
    for i in range(0, len(rates), step):
        bar = "#" * int(40 * rates[i] / peak)
        print(f"  {times[i] / 3600:7.1f}h {rates[i]:.2e} {bar}")
    return trace


def main() -> None:
    explore(GNUTELLA, scale=0.1)
    explore(OVERNET, scale=0.3)
    explore(MICROSOFT, scale=0.01)

    # Round-trip through the text format (how you'd feed a real trace in).
    trace = explore(GNUTELLA, scale=0.02)
    buffer = io.StringIO()
    save_trace(trace, buffer)
    text = buffer.getvalue()
    reloaded = load_trace(io.StringIO(text))
    print(f"\ntext round-trip: {len(text.splitlines())} lines, "
          f"{len(reloaded)} events preserved: "
          f"{'ok' if len(reloaded) == len(trace) else 'MISMATCH'}")


if __name__ == "__main__":
    main()
