#!/usr/bin/env python
"""Cut the overlay in half, heal it, and watch the ring re-merge.

A 5-minute network partition splits the population into two groups that
cannot exchange a single message; each half closes its own ring and keeps
serving lookups — which means two nodes now claim root for many keys, so
the incorrect-delivery rate spikes.  When the cut heals, the runtime
invariant checker (ring closure, leaf-set mutuality, dead-state bounds)
watches the two rings knit back together and reports how long
reconvergence takes.

Run:  python examples/partition_heal.py

The full-scale version of this scenario (plus a Gilbert–Elliott burst-loss
sweep and a gray-failure mix) runs with:  python -m repro.cli run faults
"""

from repro.experiments.scenarios import Scenario
from repro.faults import FaultEvent, FaultSchedule, Partition

PARTITION_START = 600.0
PARTITION_LENGTH = 300.0
DURATION = 1800.0


def main() -> None:
    schedule = FaultSchedule([
        FaultEvent(
            Partition(fraction=0.5),
            start=PARTITION_START,
            duration=PARTITION_LENGTH,
        ),
    ])
    print(f"partition schedule:\n{schedule.describe()}")
    print("replaying 30 min of Gnutella churn around it...")

    scenario = Scenario(seed=23, fault_schedule=schedule, invariant_period=30.0)
    result = scenario.run_gnutella(scale=0.03, duration=DURATION)

    stats = result.stats
    heal = PARTITION_START + PARTITION_LENGTH
    reconvergence = stats.reconvergence_time(heal)
    drops = result.extras.get("fault_drops", {})
    print(f"\nlookups issued:            {stats.n_lookups}")
    print(f"lookup loss rate:          {result.loss_rate:.2e}")
    print(f"incorrect delivery rate:   {result.incorrect_delivery_rate:.2e}")
    print(f"messages cut by partition: {drops.get('partition', 0)}")
    print(f"peak invariant violations: {stats.max_violations()}")
    print(f"standing violations:       {stats.standing_violations()}")
    if reconvergence is None:
        print("reconvergence:             never (ring did not re-merge!)")
    else:
        print(f"reconvergence:             {reconvergence:.0f}s after heal")

    print("\nviolations over time (fault window "
          f"{PARTITION_START:.0f}s..{heal:.0f}s):")
    for t, count in stats.violation_series():
        bar = "#" * min(count, 70)
        marker = " <- fault active" if PARTITION_START <= t < heal and count else ""
        print(f"  {t / 60:5.1f} min  {count:3d}  {bar}{marker}")


if __name__ == "__main__":
    main()
