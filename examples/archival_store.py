#!/usr/bin/env python
"""PAST-style archival storage that survives sustained churn.

Stores documents on the k closest nodes to each key; the maintenance
protocol re-replicates as nodes come and go.  The example keeps crashing
replica holders and joining fresh nodes, then shows all the documents are
still retrievable.

Run:  python examples/archival_store.py
"""

import random

from repro.apps.storage import ReplicatingStore
from repro.overlay import build_overlay
from repro.pastry import MSPastryNode, PastryConfig
from repro.pastry.nodeid import random_nodeid


def main() -> None:
    config = PastryConfig()
    sim, network, nodes = build_overlay(20, config=config, seed=41)
    stores = [ReplicatingStore(n, replication_factor=4,
                               maintenance_period=30.0) for n in nodes]
    print(f"archival store over {len(stores)} nodes, 4 replicas per object")

    documents = {f"archive-{i}": f"contents #{i}" for i in range(10)}
    for i, (name, body) in enumerate(documents.items()):
        stores[i % len(stores)].insert(name, body)
    sim.run(until=sim.now + 60)
    print(f"stored {len(documents)} documents")

    # Sustained churn: crash a node, join a node, repeat.
    rng = random.Random(7)
    population = list(nodes)
    new_stores = []
    for round_no in range(6):
        alive = [n for n in population if not n.crashed]
        victim = rng.choice(alive)
        victim.crash()
        joiner = MSPastryNode(sim, network, config, random_nodeid(rng), rng)
        new_stores.append(
            ReplicatingStore(joiner, replication_factor=4,
                             maintenance_period=30.0)
        )
        seed_node = rng.choice([n for n in population if not n.crashed])
        joiner.join(seed_node.descriptor)
        population.append(joiner)
        sim.run(until=sim.now + 240)
        print(f"churn round {round_no + 1}: crashed one node, joined one")

    all_stores = stores + new_stores
    reader = next(s for s in all_stores if not s.node.crashed)
    results = {}
    for name in documents:
        reader.fetch(name, lambda r, n=name: results.__setitem__(n, r))
    sim.run(until=sim.now + 60)
    recovered = sum(1 for r in results.values() if r.ok)
    print(f"\nafter 6 churn rounds: {recovered}/{len(documents)} documents "
          f"still retrievable")
    for name, r in sorted(results.items()):
        status = "ok" if r.ok else "LOST"
        print(f"  {name}: {status}")


if __name__ == "__main__":
    main()
