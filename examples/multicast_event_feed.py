#!/usr/bin/env python
"""Scribe-style multicast: an event feed fanned out over the overlay.

Builds a 40-node overlay, subscribes half the nodes to a topic, publishes a
stream of events, and shows that the dissemination tree delivers every event
to every subscriber — including after the tree root crashes.

Run:  python examples/multicast_event_feed.py
"""

import random

from repro.apps.multicast import MulticastNode
from repro.overlay import build_overlay
from repro.pastry import PastryConfig
from repro.pastry.nodeid import key_of, ring_distance


def main() -> None:
    sim, network, nodes = build_overlay(40, config=PastryConfig(), seed=31)
    layers = [MulticastNode(node) for node in nodes]
    topic = key_of(b"price-updates")

    rng = random.Random(5)
    subscribers = rng.sample(range(len(layers)), 20)
    inboxes = {i: [] for i in subscribers}
    for i in subscribers:
        layers[i].subscribe(topic, inboxes[i].append)
    sim.run(until=sim.now + 30)
    print(f"{len(subscribers)} nodes subscribed to the topic")

    publisher = layers[0]
    for seq in range(5):
        publisher.publish(topic, f"event-{seq}")
        sim.run(until=sim.now + 5)
    complete = sum(1 for i in subscribers if len(inboxes[i]) == 5)
    print(f"after 5 events: {complete}/{len(subscribers)} subscribers "
          f"received all of them")

    # Crash the topic's root (the tree root) and keep publishing: the new
    # root takes over the group after the overlay repairs itself.
    root = min(nodes, key=lambda n: (ring_distance(n.id, topic), n.id))
    print(f"crashing the multicast tree root {root.id:#034x}")
    root.crash()
    sim.run(until=sim.now + 180)  # failure detection + leaf-set repair

    live = [i for i in subscribers if not nodes[i].crashed]
    for i in live:
        layers[i].subscribe(topic, inboxes[i].append)  # re-announce
    sim.run(until=sim.now + 30)
    before = {i: len(inboxes[i]) for i in live}
    publisher.publish(topic, "event-after-crash")
    sim.run(until=sim.now + 30)
    got = sum(1 for i in live if len(inboxes[i]) > before[i])
    print(f"after the crash: {got}/{len(live)} live subscribers received "
          f"the new event")


if __name__ == "__main__":
    main()
